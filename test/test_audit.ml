(* Verdict transparency log: STHs, receipts, auditors, gossip,
   equivocation detection, and the audit-off byte-identity guarantees.

   The adversarial scenarios here pin the subsystem's acceptance
   criterion: a log operator that forks its history (split view), drops
   an entry, or rolls back is convicted by gossiping auditors within one
   checkpoint interval — deterministically. *)

open Audit

let keypair seed = Crypto.Rsa.generate (Crypto.Drbg.create ~seed) ~bits:512

(* --- STHs ---------------------------------------------------------------- *)

let test_sth_sign_verify () =
  let kp = keypair "sth-test" in
  let sth = Sth.sign kp.Crypto.Rsa.secret ~log_id:"as-1" ~size:3 ~root:"r00t" ~at:5000 in
  Alcotest.(check bool) "verifies" true (Sth.verify ~key:kp.Crypto.Rsa.public sth);
  let other = keypair "sth-other" in
  Alcotest.(check bool) "wrong key" false (Sth.verify ~key:other.Crypto.Rsa.public sth);
  Alcotest.(check bool) "tampered size" false
    (Sth.verify ~key:kp.Crypto.Rsa.public { sth with Sth.size = 4 });
  Alcotest.(check bool) "tampered root" false
    (Sth.verify ~key:kp.Crypto.Rsa.public { sth with Sth.root = "r00u" })

let test_sth_wire_roundtrip () =
  let kp = keypair "sth-wire" in
  let sth = Sth.sign kp.Crypto.Rsa.secret ~log_id:"as-2" ~size:17 ~root:"abc" ~at:123456 in
  (match Sth.of_string (Sth.to_string sth) with
  | Some back -> Alcotest.(check bool) "roundtrip" true (Sth.equal sth back)
  | None -> Alcotest.fail "roundtrip decode failed");
  Alcotest.(check bool) "garbage rejected" true (Sth.of_string "not an sth" = None)

(* --- Log + receipts ------------------------------------------------------ *)

let entries n = List.init n (Printf.sprintf "vm-%04d|vm_integrity|healthy")

let test_log_inclusion_consistency () =
  let kp = keypair "log-basics" in
  let log = Log.create ~log_id:"as-1" ~key:kp.Crypto.Rsa.secret () in
  let es = entries 11 in
  List.iteri
    (fun i e -> Alcotest.(check int) "append index" i (Log.append log e))
    es;
  Alcotest.(check int) "size" 11 (Log.size log);
  let root = Log.root log in
  List.iteri
    (fun i e ->
      let proof = Log.inclusion log ~size:11 i in
      Alcotest.(check bool)
        (Printf.sprintf "inclusion %d" i)
        true
        (Crypto.Merkle.verify ~root ~leaf:e proof))
    es;
  (* Every historical prefix is provably a prefix of the current tree. *)
  for m = 0 to 11 do
    let proof = Log.consistency log ~old_size:m ~size:11 in
    Alcotest.(check bool)
      (Printf.sprintf "consistency %d->11" m)
      true
      (Crypto.Merkle.verify_consistency ~old_size:m ~old_root:(Log.root_at log m)
         ~size:11 ~root proof)
  done

let test_receipt_verifies_and_rejects () =
  let kp = keypair "receipt" in
  let log = Log.create ~log_id:"as-1" ~key:kp.Crypto.Rsa.secret () in
  List.iter (fun e -> ignore (Log.append log e : int)) (entries 5);
  let entry = "vm-0005|vm_integrity|compromised:rootkit" in
  let receipt = Log.append_with_receipt log entry in
  let key = Log.public_key log in
  Alcotest.(check bool) "receipt ok" true (Receipt.verify ~key ~entry receipt);
  Alcotest.(check bool) "wrong entry" false
    (Receipt.verify ~key ~entry:"vm-0005|vm_integrity|healthy" receipt);
  Alcotest.(check bool) "wrong index" false
    (Receipt.verify ~key ~entry { receipt with Receipt.index = 2 });
  let other = keypair "receipt-other" in
  Alcotest.(check bool) "wrong operator key" false
    (Receipt.verify ~key:other.Crypto.Rsa.public ~entry receipt);
  Alcotest.(check int) "appends counted" 6 (Log.appends log);
  Alcotest.(check bool) "proofs counted" true (Log.proofs_served log >= 1)

let test_checkpoint_heads () =
  let clockv = ref 0 in
  let kp = keypair "ckpt" in
  let log =
    Log.create ~log_id:"as-1" ~key:kp.Crypto.Rsa.secret ~clock:(fun () -> !clockv) ()
  in
  ignore (Log.append log "e0" : int);
  clockv := 1000;
  let sth1 = Log.checkpoint log in
  Alcotest.(check int) "head size" 1 sth1.Sth.size;
  Alcotest.(check int) "head time" 1000 sth1.Sth.at;
  ignore (Log.append log "e1" : int);
  clockv := 2000;
  let sth2 = Log.checkpoint log in
  Alcotest.(check int) "head grows" 2 sth2.Sth.size;
  Alcotest.(check bool) "latest" true
    (match Log.latest_sth log with Some s -> Sth.equal s sth2 | None -> false);
  Alcotest.(check int) "checkpoints counted" 2 (Log.checkpoints log)

(* --- Auditors ------------------------------------------------------------ *)

let auditor_pair seed =
  let kp = keypair seed in
  let key_of _ = Some kp.Crypto.Rsa.public in
  ( kp,
    Auditor.create ~name:(seed ^ "-a") ~key_of (),
    Auditor.create ~name:(seed ^ "-b") ~key_of () )

let test_honest_log_clean () =
  let kp, a, b = auditor_pair "honest" in
  let log = Log.create ~log_id:"as-1" ~key:kp.Crypto.Rsa.secret () in
  let view = View.of_log log in
  for round = 1 to 5 do
    List.iter (fun e -> ignore (Log.append log e : int)) (entries 3);
    ignore (Log.checkpoint log : Sth.t);
    Auditor.observe a view;
    Auditor.observe b view;
    Auditor.exchange a b;
    Alcotest.(check int) (Printf.sprintf "round %d clean" round) 0
      (Auditor.evidence_count a + Auditor.evidence_count b)
  done;
  (match Auditor.trusted a ~log_id:"as-1" with
  | Some sth -> Alcotest.(check int) "trusted head current" 15 sth.Sth.size
  | None -> Alcotest.fail "no trusted head");
  Alcotest.(check bool) "consistency proofs ran" true (Auditor.proofs_checked a > 0)

let test_forged_sth_rejected () =
  let _, a, _ = auditor_pair "forged" in
  let mallory = keypair "mallory" in
  let sth =
    Sth.sign mallory.Crypto.Rsa.secret ~log_id:"as-1" ~size:9 ~root:"fake" ~at:0
  in
  Auditor.note a sth;
  (match Auditor.evidence a with
  | [ ev ] ->
      Alcotest.(check bool) "bad signature kind" true (ev.Auditor.kind = Auditor.Bad_signature)
  | evs -> Alcotest.failf "expected 1 evidence, got %d" (List.length evs));
  Alcotest.(check bool) "forged head never trusted" true
    (Auditor.trusted a ~log_id:"as-1" = None)

let test_rollback_detected () =
  let kp, a, _ = auditor_pair "rollback" in
  let log = Log.create ~log_id:"as-1" ~key:kp.Crypto.Rsa.secret () in
  List.iter (fun e -> ignore (Log.append log e : int)) (entries 4);
  ignore (Log.checkpoint log : Sth.t);
  let view = View.of_log log in
  Auditor.observe a view;
  let old = Log.checkpoint log in
  List.iter (fun e -> ignore (Log.append log e : int)) (entries 4);
  ignore (Log.checkpoint log : Sth.t);
  Auditor.observe a view;
  Alcotest.(check int) "still clean" 0 (Auditor.evidence_count a);
  (* Now the operator serves the genuinely-signed old head as latest. *)
  Auditor.observe a (View.stale view ~sth:old);
  match Auditor.evidence a with
  | ev :: _ ->
      Alcotest.(check bool) "rollback kind" true (ev.Auditor.kind = Auditor.Rollback)
  | [] -> Alcotest.fail "rollback not detected"

let test_split_view_detected_by_gossip () =
  let kp = keypair "fork" in
  let key_of _ = Some kp.Crypto.Rsa.public in
  let a = Auditor.create ~name:"a" ~key_of () in
  let b = Auditor.create ~name:"b" ~key_of () in
  let fork = View.fork ~log_id:"as-1" ~key:kp.Crypto.Rsa.secret () in
  List.iter fork.View.append_both (entries 4);
  (* Diverge: same index, different verdicts on each face. *)
  fork.View.append_a "vm-0099|vm_integrity|healthy";
  fork.View.append_b "vm-0099|vm_integrity|compromised:hidden";
  ignore (Log.checkpoint fork.View.log_a : Sth.t);
  ignore (Log.checkpoint fork.View.log_b : Sth.t);
  Auditor.observe a fork.View.face_a;
  Auditor.observe b fork.View.face_b;
  Alcotest.(check int) "isolated observers see nothing" 0
    (Auditor.evidence_count a + Auditor.evidence_count b);
  (* First gossip exchange convicts: same size, different roots. *)
  Auditor.exchange a b;
  let split =
    List.exists
      (fun ev -> ev.Auditor.kind = Auditor.Split_view)
      (Auditor.evidence a @ Auditor.evidence b)
  in
  Alcotest.(check bool) "split view convicted at first exchange" true split

let test_dropped_entry_detected () =
  let kp = keypair "dropper" in
  let key_of _ = Some kp.Crypto.Rsa.public in
  let a = Auditor.create ~name:"a" ~key_of () in
  let b = Auditor.create ~name:"b" ~key_of () in
  let fork = View.fork ~log_id:"as-1" ~key:kp.Crypto.Rsa.secret () in
  List.iter fork.View.append_both (entries 3);
  (* Face B silently drops one verdict, then both resume appending. *)
  fork.View.append_a "vm-0777|vm_integrity|compromised:suppressed";
  List.iter fork.View.append_both (entries 2);
  ignore (Log.checkpoint fork.View.log_a : Sth.t);
  ignore (Log.checkpoint fork.View.log_b : Sth.t);
  Auditor.observe a fork.View.face_a;
  Auditor.observe b fork.View.face_b;
  Auditor.exchange a b;
  (* B's head cannot be an honest ancestor of A's log (nor vice versa):
     the next poll runs the cross-check and convicts. *)
  Auditor.observe a fork.View.face_a;
  Auditor.observe b fork.View.face_b;
  Alcotest.(check bool) "suppressed entry detected" true
    (Auditor.evidence_count a + Auditor.evidence_count b > 0)

let test_fork_convicted_within_one_interval () =
  (* The acceptance criterion, pinned deterministically: a fork planted
     mid-interval is convicted by the gossiping auditors no later than
     one checkpoint interval after the divergence. *)
  List.iter
    (fun interval ->
      let d = Experiments.Audit_exp.detection_run ~seed:2015 ~interval in
      match d.Experiments.Audit_exp.detected_at with
      | None -> Alcotest.fail "fork not detected"
      | Some at ->
          let latency = at - d.Experiments.Audit_exp.forked_at in
          Alcotest.(check bool)
            (Printf.sprintf "detected within %d us (took %d us)" interval latency)
            true (latency > 0 && latency <= interval);
          Alcotest.(check string) "convicted as split view" "split-view"
            d.Experiments.Audit_exp.evidence_kind)
    [ Sim.Time.ms 250; Sim.Time.sec 1; Sim.Time.sec 5 ]

(* --- Gossip over the simulated network ----------------------------------- *)

let test_gossip_over_network () =
  let net = Net.Network.create ~seed:42 () in
  let kp = keypair "net-gossip" in
  let key_of _ = Some kp.Crypto.Rsa.public in
  let a = Auditor.create ~name:"aud-a" ~key_of () in
  let b = Auditor.create ~name:"aud-b" ~key_of () in
  Gossip.register net a;
  Gossip.register net b;
  let fork = View.fork ~log_id:"as-1" ~key:kp.Crypto.Rsa.secret () in
  List.iter fork.View.append_both (entries 4);
  fork.View.append_a "vm-0001|vm_integrity|healthy";
  fork.View.append_b "vm-0001|vm_integrity|compromised:hidden";
  ignore (Log.checkpoint fork.View.log_a : Sth.t);
  ignore (Log.checkpoint fork.View.log_b : Sth.t);
  Auditor.observe a fork.View.face_a;
  Auditor.observe b fork.View.face_b;
  (* Round 1 rides a faulty wire: the adversary drops everything, so the
     heads simply do not arrive — detection is delayed, never corrupted. *)
  Net.Network.set_adversary net (Net.Fault.blackout ());
  Gossip.broadcast net a ~dst:"aud-b";
  Gossip.broadcast net b ~dst:"aud-a";
  Alcotest.(check int) "blackout delays detection" 0
    (Auditor.evidence_count a + Auditor.evidence_count b);
  (* Round 2, wire healed: the same heads convict immediately. *)
  Net.Network.clear_adversary net;
  Gossip.broadcast net a ~dst:"aud-b";
  Gossip.broadcast net b ~dst:"aud-a";
  Alcotest.(check bool) "split view convicted over the network" true
    (List.exists
       (fun ev -> ev.Auditor.kind = Auditor.Split_view)
       (Auditor.evidence a @ Auditor.evidence b))

let test_gossip_garbled_head_ignored () =
  let net = Net.Network.create ~seed:43 () in
  let kp = keypair "net-garble" in
  let key_of _ = Some kp.Crypto.Rsa.public in
  let a = Auditor.create ~name:"aud-a" ~key_of () in
  Gossip.register net a;
  let log = Log.create ~log_id:"as-1" ~key:kp.Crypto.Rsa.secret () in
  ignore (Log.append log "e0" : int);
  let sth = Log.checkpoint log in
  (* Garble the datagram in flight: it must not become evidence or trust. *)
  Net.Network.set_adversary net (Net.Fault.garble_nth 1);
  Gossip.announce net ~src:"somewhere" ~dst:"aud-a" sth;
  Net.Network.clear_adversary net;
  Alcotest.(check bool) "garbled head ignored" true
    (Auditor.trusted a ~log_id:"as-1" = None);
  (* The retransmission lands and is trusted (first contact). *)
  Gossip.announce net ~src:"somewhere" ~dst:"aud-a" sth;
  Alcotest.(check bool) "clean head trusted" true
    (match Auditor.trusted a ~log_id:"as-1" with
    | Some s -> Sth.equal s sth
    | None -> false)

(* --- Core integration ---------------------------------------------------- *)

open Core

let fast_config = { Cloud.default_config with key_bits = 512 }

let launch_ok customer ~properties =
  match
    Cloud.Customer.launch customer ~image:"cirros" ~flavor:"small" ~properties ()
  with
  | Ok info -> info
  | Error e -> Alcotest.failf "launch failed: %a" Cloud.Customer.pp_error e

let test_cloud_audited_attest_end_to_end () =
  let cloud = Cloud.build ~config:fast_config () in
  let logs = Cloud.enable_audit cloud in
  Alcotest.(check int) "one log per AS" (List.length (Cloud.attestation_servers cloud))
    (List.length logs);
  let c = Cloud.Customer.create cloud ~name:"alice" in
  let info = launch_ok c ~properties:[ Property.Runtime_integrity ] in
  let vid = info.Commands.vid in
  (match Cloud.Customer.attest c ~vid ~property:Property.Runtime_integrity with
  | Ok r ->
      Alcotest.(check bool) "healthy" true (r.Report.status = Report.Healthy)
  | Error e -> Alcotest.failf "audited attest failed: %a" Cloud.Customer.pp_error e);
  (* Every signed verdict is on the record: launch attestation + this one. *)
  let log = List.hd logs in
  Alcotest.(check bool) "verdicts logged" true (Log.size log >= 1);
  (* Replaying the log re-verifies each committed verdict's AS signature. *)
  let as_ = Cloud.attestation_server cloud in
  let key = Attestation_server.public_key as_ in
  let auditor =
    Auditor.create ~name:"replayer" ~key_of:(fun _ -> Some (Log.public_key log)) ()
  in
  let check ~index:_ entry =
    match Protocol.decode_as_report entry with
    | None -> false
    | Some r ->
        Protocol.verify_as_report ~key ~expected_vid:r.Protocol.vid
          ~expected_server:r.Protocol.server ~expected_property:r.Protocol.property
          ~expected_nonce:r.Protocol.nonce r
        = Ok ()
  in
  let bad = Auditor.replay auditor (View.of_log log) ~upto:(Log.size log) ~check in
  Alcotest.(check int) "all logged verdicts replay clean" 0 bad;
  Alcotest.(check int) "replay evidence empty" 0 (Auditor.evidence_count auditor)

let test_auditing_without_as_audit_is_hard_error () =
  let cloud = Cloud.build ~config:fast_config () in
  let c = Cloud.Customer.create cloud ~name:"alice" in
  let info = launch_ok c ~properties:[ Property.Runtime_integrity ] in
  (* Controller demands receipts, but no AS issues them: a receiptless
     verdict must be refused outright, never degraded to Unknown. *)
  Controller.set_auditing (Cloud.controller cloud) true;
  match Cloud.Customer.attest c ~vid:info.Commands.vid ~property:Property.Runtime_integrity with
  | Error _ -> ()
  | Ok r ->
      Alcotest.failf "receiptless verdict accepted with status %a" Report.pp_status
        r.Report.status

(* Parse a single-attestation service reply assuming the exact pre-audit
   layout — tag, report, ledger, nothing else.  Wire.Codec.decode rejects
   trailing bytes, so this fails iff the reply grew a receipt block. *)
let pr3_exact_parse raw =
  Wire.Codec.decode_opt raw (fun d ->
      match Wire.Codec.Dec.u8 d with
      | 1 ->
          let report_raw = Wire.Codec.Dec.str d in
          let entries =
            Wire.Codec.Dec.list d (fun d ->
                let label = Wire.Codec.Dec.str d in
                let cost = Wire.Codec.Dec.int d in
                (label, cost))
          in
          ignore (entries : (string * int) list);
          Protocol.decode_as_report report_raw <> None
      | 0 ->
          ignore (Wire.Codec.Dec.str d : string);
          true
      | _ -> false)
  <> None

let test_audit_off_wire_bytes_unchanged () =
  let cloud = Cloud.build ~config:fast_config () in
  let c = Cloud.Customer.create cloud ~name:"alice" in
  let info = launch_ok c ~properties:[ Property.Runtime_integrity ] in
  let vid = info.Commands.vid in
  let server =
    match Controller.vm_host (Cloud.controller cloud) ~vid with
    | Some h -> h
    | None -> Alcotest.fail "vm host unknown"
  in
  let as_ = Cloud.attestation_server cloud in
  let request =
    Protocol.encode_as_request
      { Protocol.vid; server; property = Property.Runtime_integrity; nonce = "n2-bytes" }
  in
  (* Audit off (the default): the reply parses under the strict pre-audit
     grammar with zero trailing bytes. *)
  let raw_off = Attestation_server.request_handler as_ ~peer:"controller" request in
  Alcotest.(check bool) "audit-off reply is byte-identical to the pre-audit format" true
    (pr3_exact_parse raw_off);
  (match Attestation_server.decode_service_reply raw_off with
  | Ok (_, _, receipt) ->
      Alcotest.(check bool) "no receipt when off" true (receipt = None)
  | Error e -> Alcotest.failf "reply undecodable: %s" e);
  (* Audit on: same request, reply now carries a trailing receipt — the
     strict pre-audit parse must refuse it. *)
  ignore (Attestation_server.enable_audit as_ : Log.t);
  let raw_on = Attestation_server.request_handler as_ ~peer:"controller" request in
  Alcotest.(check bool) "audited reply is NOT pre-audit-shaped" false
    (pr3_exact_parse raw_on);
  match Attestation_server.decode_service_reply raw_on with
  | Ok (report, _, Some receipt) ->
      Alcotest.(check bool) "receipt binds the logged verdict" true
        (Receipt.verify
           ~key:(Attestation_server.public_key as_)
           ~entry:(Protocol.encode_as_report report)
           receipt)
  | Ok (_, _, None) -> Alcotest.fail "audited reply missing its receipt"
  | Error e -> Alcotest.failf "audited reply undecodable: %s" e

(* --- Fleet driver -------------------------------------------------------- *)

let fleet_config =
  {
    Fleet.Driver.default_config with
    servers = 40;
    vms = 200;
    rate_per_s = 12.0;
    duration = Sim.Time.sec 5;
    drain = Sim.Time.sec 5;
    hot_vms = 32;
  }

let test_fleet_audit_off_is_inert () =
  let r = Fleet.Driver.run fleet_config in
  Alcotest.(check int) "no appends" 0 r.Fleet.Driver.audit_appends;
  Alcotest.(check int) "no checkpoints" 0 r.Fleet.Driver.audit_checkpoints;
  Alcotest.(check int) "no proofs" 0 r.Fleet.Driver.audit_proofs;
  Alcotest.(check int) "no equivocations" 0 r.Fleet.Driver.audit_equivocations;
  Alcotest.(check bool) "no audit block in row JSON" true
    (Experiments.Fleet_exp.audit_fields r = []);
  (* The audit path is the only real RSA in the fleet model, so with audit
     off every domain's verify memo stays untouched. *)
  Alcotest.(check bool) "verify memo untouched" true
    (Array.for_all (fun (h, m) -> h = 0 && m = 0) r.Fleet.Driver.verify_memo)

let test_fleet_audit_adds_latency_only () =
  let base = Fleet.Driver.run fleet_config in
  let audited =
    Fleet.Driver.run { fleet_config with Fleet.Driver.audit_checkpoint = Sim.Time.ms 500 }
  in
  (* Auditing is pure bookkeeping + latency: the schedule, admission and
     measurement streams are untouched. *)
  Alcotest.(check int) "offered unchanged" base.Fleet.Driver.offered
    audited.Fleet.Driver.offered;
  Alcotest.(check int) "served unchanged" base.Fleet.Driver.served
    audited.Fleet.Driver.served;
  Alcotest.(check int) "measurements unchanged" base.Fleet.Driver.measurements
    audited.Fleet.Driver.measurements;
  Alcotest.(check int) "sheds unchanged"
    (base.Fleet.Driver.shed_customer + base.Fleet.Driver.shed_periodic
   + base.Fleet.Driver.shed_recheck)
    (audited.Fleet.Driver.shed_customer + audited.Fleet.Driver.shed_periodic
   + audited.Fleet.Driver.shed_recheck);
  Alcotest.(check bool) "latency overhead visible" true
    (audited.Fleet.Driver.p50_ms > base.Fleet.Driver.p50_ms);
  (* Every completed measurement is on the record; the honest fleet shows
     zero equivocations. *)
  Alcotest.(check int) "append per measurement" audited.Fleet.Driver.measurements
    audited.Fleet.Driver.audit_appends;
  Alcotest.(check bool) "checkpoints ran" true (audited.Fleet.Driver.audit_checkpoints > 0);
  Alcotest.(check bool) "proofs served" true (audited.Fleet.Driver.audit_proofs > 0);
  Alcotest.(check int) "honest fleet" 0 audited.Fleet.Driver.audit_equivocations;
  Alcotest.(check bool) "audit block present in row JSON" true
    (Experiments.Fleet_exp.audit_fields audited <> []);
  (* Receipt and tree-head verification flow through the per-domain RSA
     verify memo; re-checked tree heads hit it. *)
  let hits = Array.fold_left (fun acc (h, _) -> acc + h) 0 audited.Fleet.Driver.verify_memo in
  let misses =
    Array.fold_left (fun acc (_, m) -> acc + m) 0 audited.Fleet.Driver.verify_memo
  in
  Alcotest.(check bool) "memo misses recorded" true (misses > 0);
  Alcotest.(check bool) "memo hits recorded" true (hits > 0)

let test_fleet_audit_deterministic () =
  let config =
    { fleet_config with Fleet.Driver.audit_checkpoint = Sim.Time.sec 1 }
  in
  let r1 = Fleet.Driver.run config in
  let r2 = Fleet.Driver.run config in
  Alcotest.(check bool) "audited runs replay deterministically" true (r1 = r2)

let () =
  Alcotest.run "audit"
    [
      ( "sth",
        [
          Alcotest.test_case "sign and verify" `Quick test_sth_sign_verify;
          Alcotest.test_case "wire roundtrip" `Quick test_sth_wire_roundtrip;
        ] );
      ( "log",
        [
          Alcotest.test_case "inclusion + consistency" `Quick test_log_inclusion_consistency;
          Alcotest.test_case "receipts verify and reject" `Quick
            test_receipt_verifies_and_rejects;
          Alcotest.test_case "checkpoint heads" `Quick test_checkpoint_heads;
        ] );
      ( "auditor",
        [
          Alcotest.test_case "honest log stays clean" `Quick test_honest_log_clean;
          Alcotest.test_case "forged sth rejected" `Quick test_forged_sth_rejected;
          Alcotest.test_case "rollback detected" `Quick test_rollback_detected;
          Alcotest.test_case "split view convicted by gossip" `Quick
            test_split_view_detected_by_gossip;
          Alcotest.test_case "dropped entry detected" `Quick test_dropped_entry_detected;
          Alcotest.test_case "fork convicted within one interval" `Quick
            test_fork_convicted_within_one_interval;
        ] );
      ( "gossip",
        [
          Alcotest.test_case "split view over faulty network" `Quick
            test_gossip_over_network;
          Alcotest.test_case "garbled head ignored" `Quick test_gossip_garbled_head_ignored;
        ] );
      ( "core",
        [
          Alcotest.test_case "audited attest end to end" `Quick
            test_cloud_audited_attest_end_to_end;
          Alcotest.test_case "missing receipt is a hard error" `Quick
            test_auditing_without_as_audit_is_hard_error;
          Alcotest.test_case "audit off keeps pre-audit bytes" `Quick
            test_audit_off_wire_bytes_unchanged;
        ] );
      ( "fleet",
        [
          Alcotest.test_case "audit off is inert" `Quick test_fleet_audit_off_is_inert;
          Alcotest.test_case "audit adds latency only" `Quick
            test_fleet_audit_adds_latency_only;
          Alcotest.test_case "audited run deterministic" `Quick
            test_fleet_audit_deterministic;
        ] );
    ]
