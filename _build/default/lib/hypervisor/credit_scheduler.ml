type priority = Boost | Under | Over

let prio_rank = function Boost -> 2 | Under -> 1 | Over -> 0

type vstate = Ready | Running | Blocked | Paused | Dead

type vcpu = {
  vid : int;
  index : int;  (* index within the domain, the target space of IPIs *)
  dom : domain;
  program : Program.t;
  pcpu_id : int;
  mutable state : vstate;
  mutable priority : priority;
  mutable remaining : Sim.Time.t;  (* compute left in the current action *)
  mutable credits : int;
  mutable run_start : Sim.Time.t;  (* start of the current burst *)
  mutable last_charge : Sim.Time.t;  (* last runtime-accounting instant *)
  mutable boosted_at : Sim.Time.t;
  mutable wake_handle : Sim.Engine.handle option;
  mutable sleep_until : Sim.Time.t;
  mutable sleep_left : Sim.Time.t;  (* saved remaining sleep across pause *)
  mutable ready_since : Sim.Time.t;  (* when the vCPU last became Ready *)
  mutable queue_token : int;  (* lazy-deletion marker for runqueue entries *)
}

and domain = {
  dom_id : int;
  name : string;
  weight : int;
  mutable vcpus : vcpu list;  (* in index order *)
  mutable runtime : Sim.Time.t;
  mutable waittime : Sim.Time.t;  (* ready-but-not-running ("steal") time *)
  burst_hist : int array;
  mutable trace_on : bool;
  mutable trace : (Sim.Time.t * Sim.Time.t) list;  (* newest first *)
  mutable paused : bool;
  mutable dead : bool;
}

type pcpu = {
  id : int;
  mutable running : vcpu option;
  mutable slice_end : Sim.Time.t;
  mutable cpu_event : Sim.Engine.handle option;
  boostq : (vcpu * int) Queue.t;
  underq : (vcpu * int) Queue.t;
  overq : (vcpu * int) Queue.t;
  mutable busy : Sim.Time.t;
}

type config = {
  slice : Sim.Time.t;
  tick : Sim.Time.t;
  accounting : Sim.Time.t;
  credits_per_tick : int;
  credit_cap : int;
  burst_bins : int;
}

let default_config =
  {
    slice = Sim.Time.ms 30;
    tick = Sim.Time.ms 10;
    accounting = Sim.Time.ms 30;
    credits_per_tick = 100;
    credit_cap = 600;
    burst_bins = 30;
  }

type t = {
  cfg : config;
  engine : Sim.Engine.t;
  cpus : pcpu array;
  mutable doms : domain list;
  mutable next_dom_id : int;
  mutable next_vid : int;
  mutable next_pin : int;
}

let engine t = t.engine
let pcpus t = Array.length t.cpus
let now t = Sim.Engine.now t.engine

let domain_name d = d.name
let domains t = List.rev t.doms
let credits v = v.credits
let domain_of v = v.dom
let is_paused d = d.paused

(* --- Run queues with lazy deletion ------------------------------------ *)

let queue_for pc = function
  | Boost -> pc.boostq
  | Under -> pc.underq
  | Over -> pc.overq

let invalidate v = v.queue_token <- v.queue_token + 1

let enqueue pc v =
  invalidate v;
  Queue.push (v, v.queue_token) (queue_for pc v.priority)

let rec pop_valid q =
  match Queue.take_opt q with
  | None -> None
  | Some (v, token) ->
      if v.queue_token = token && v.state = Ready then Some v else pop_valid q

let pop_ready pc =
  match pop_valid pc.boostq with
  | Some v -> Some v
  | None -> (
      match pop_valid pc.underq with
      | Some v -> Some v
      | None -> pop_valid pc.overq)

let best_waiting_rank pc =
  (* Rank of the best valid queued vCPU, for preemption decisions. *)
  let peek q =
    let found = ref None in
    Queue.iter
      (fun (v, token) ->
        if !found = None && v.queue_token = token && v.state = Ready then found := Some v)
      q;
    !found
  in
  match peek pc.boostq with
  | Some _ -> Some 2
  | None -> (
      match peek pc.underq with
      | Some _ -> Some 1
      | None -> ( match peek pc.overq with Some _ -> Some 0 | None -> None))

(* --- Accounting helpers ------------------------------------------------ *)

let record_burst t v len =
  if len > 0 then begin
    let d = v.dom in
    let ms = Sim.Time.to_ms len in
    let bin = int_of_float (ceil ms) - 1 in
    let bin = if bin < 0 then 0 else if bin >= t.cfg.burst_bins then t.cfg.burst_bins - 1 else bin in
    d.burst_hist.(bin) <- d.burst_hist.(bin) + 1;
    if d.trace_on then d.trace <- (v.run_start, len) :: d.trace
  end

(* Close a Ready-wait interval (the vCPU wanted the CPU but didn't have
   it) and charge it to the domain's steal time. *)
let end_wait t v =
  if v.state = Ready then begin
    v.dom.waittime <- v.dom.waittime + (now t - v.ready_since);
    v.ready_since <- now t
  end

let charge t v =
  let elapsed = now t - v.last_charge in
  if elapsed > 0 then begin
    v.dom.runtime <- v.dom.runtime + elapsed;
    t.cpus.(v.pcpu_id).busy <- t.cpus.(v.pcpu_id).busy + elapsed;
    v.remaining <- max 0 (v.remaining - elapsed);
    v.last_charge <- now t
  end

let refresh_priority v =
  if v.priority <> Boost then v.priority <- (if v.credits > 0 then Under else Over)

(* --- Core scheduling ---------------------------------------------------- *)

let cancel_cpu_event t pc =
  match pc.cpu_event with
  | Some h ->
      Sim.Engine.cancel t.engine h;
      pc.cpu_event <- None
  | None -> ()

(* Deschedule the running vCPU of [pc].  The caller decides the vCPU's next
   state; this handles accounting and burst recording. *)
let stop_running t pc =
  match pc.running with
  | None -> ()
  | Some v ->
      charge t v;
      record_burst t v (now t - v.run_start);
      cancel_cpu_event t pc;
      pc.running <- None

let rec dispatch_next t pc =
  match pop_ready pc with
  | None -> ()
  | Some v -> (
      match ensure_work t v with
      | `Run -> run t pc v
      | `Parked -> dispatch_next t pc)

and run t pc v =
  end_wait t v;
  invalidate v;
  v.state <- Running;
  pc.running <- Some v;
  v.run_start <- now t;
  v.last_charge <- now t;
  pc.slice_end <- now t + t.cfg.slice;
  arm_cpu_event t pc v

and arm_cpu_event t pc v =
  let run_until = min pc.slice_end (now t + v.remaining) in
  let run_until = max run_until (now t) in
  pc.cpu_event <- Some (Sim.Engine.schedule t.engine ~at:run_until (fun () -> on_cpu_event t pc))

(* Pull actions from the program until the vCPU has timed work, blocks or
   halts.  Zero-time actions (IPIs) are bounded to avoid livelock. *)
and ensure_work t v =
  let rec go guard =
    if v.remaining > 0 then `Run
    else if guard > 64 then begin
      v.remaining <- Sim.Time.us 10;
      `Run
    end
    else begin
      match Program.next v.program ~now:(now t) with
      | Program.Compute d -> if d <= 0 then go (guard + 1) else begin v.remaining <- d; `Run end
      | Program.Sleep d ->
          end_wait t v;
          put_to_sleep t v (max d 1);
          `Parked
      | Program.Ipi target ->
          ipi t v.dom target;
          go (guard + 1)
      | Program.Halt ->
          end_wait t v;
          v.state <- Dead;
          invalidate v;
          `Parked
    end
  in
  go 0

and put_to_sleep t v d =
  v.state <- Blocked;
  invalidate v;
  v.sleep_until <- now t + d;
  v.wake_handle <-
    Some
      (Sim.Engine.schedule t.engine ~at:v.sleep_until (fun () ->
           v.wake_handle <- None;
           do_wake t v))

(* IPIs are delivered as zero-delay events so a wake triggered from inside
   the scheduler's own event handler cannot re-enter it. *)
and ipi t dom target =
  match List.nth_opt dom.vcpus target with
  | None -> ()
  | Some sibling ->
      ignore
        (Sim.Engine.schedule_after t.engine ~delay:0 (fun () ->
             (match sibling.wake_handle with
             | Some h ->
                 Sim.Engine.cancel t.engine h;
                 sibling.wake_handle <- None
             | None -> ());
             do_wake t sibling)
          : Sim.Engine.handle)

and do_wake t v =
  if v.state = Blocked && not v.dom.paused && not v.dom.dead then begin
    v.state <- Ready;
    v.ready_since <- now t;
    (* The boost mechanism: a waking vCPU that still has credits gets
       top priority and may preempt the running vCPU. *)
    if v.credits > 0 then begin
      v.priority <- Boost;
      v.boosted_at <- now t
    end
    else v.priority <- Over;
    let pc = t.cpus.(v.pcpu_id) in
    enqueue pc v;
    maybe_preempt t pc
  end

and maybe_preempt t pc =
  match pc.running with
  | None -> dispatch_next t pc
  | Some cur -> (
      match best_waiting_rank pc with
      | Some rank when rank > prio_rank cur.priority ->
          stop_running t pc;
          cur.state <- Ready;
          cur.ready_since <- now t;
          (* A preempted boosted vCPU loses its boost. *)
          if cur.priority = Boost then cur.priority <- (if cur.credits > 0 then Under else Over);
          enqueue pc cur;
          dispatch_next t pc
      | Some _ | None -> ())

and on_cpu_event t pc =
  pc.cpu_event <- None;
  match pc.running with
  | None -> ()
  | Some v ->
      charge t v;
      if v.remaining = 0 then begin
        (* Action complete: ask the program for more work. *)
        match ensure_work t v with
        | `Parked ->
            (* Blocked or halted: close the burst and schedule someone else. *)
            record_burst t v (now t - v.run_start);
            pc.running <- None;
            dispatch_next t pc
        | `Run ->
            if now t >= pc.slice_end then begin
              (* Slice expired exactly at the action boundary. *)
              record_burst t v (now t - v.run_start);
              pc.running <- None;
              requeue_expired t pc v;
              dispatch_next t pc
            end
            else arm_cpu_event t pc v
      end
      else begin
        (* Slice expiry mid-compute: round-robin to the next vCPU. *)
        record_burst t v (now t - v.run_start);
        pc.running <- None;
        requeue_expired t pc v;
        dispatch_next t pc
      end

and requeue_expired t pc v =
  v.state <- Ready;
  v.ready_since <- now t;
  if v.priority = Boost then v.priority <- (if v.credits > 0 then Under else Over);
  enqueue pc v

(* --- Periodic machinery ------------------------------------------------- *)

let on_tick t =
  Array.iter
    (fun pc ->
      (match pc.running with
      | Some v when now t > v.run_start ->
          (* The historic vulnerability: only the vCPU holding the CPU at
             the tick instant is debited.  A vCPU dispatched at this exact
             instant is exempt: the tick interrupt preceded the dispatch. *)
          charge t v;
          v.credits <- max (-t.cfg.credit_cap) (v.credits - t.cfg.credits_per_tick);
          if v.priority = Boost && now t - v.boosted_at >= t.cfg.tick then
            v.priority <- (if v.credits > 0 then Under else Over)
          else refresh_priority v
      | Some _ | None -> ());
      maybe_preempt t pc)
    t.cpus

let on_accounting t =
  let live_doms =
    List.filter
      (fun d ->
        (not d.dead) && (not d.paused)
        && List.exists (fun v -> v.state <> Dead) d.vcpus)
      t.doms
  in
  let total_weight = List.fold_left (fun acc d -> acc + d.weight) 0 live_doms in
  if total_weight > 0 then begin
    let periods = t.cfg.accounting / t.cfg.tick in
    let pool = Array.length t.cpus * periods * t.cfg.credits_per_tick in
    List.iter
      (fun d ->
        let live = List.filter (fun v -> v.state <> Dead) d.vcpus in
        let n = List.length live in
        if n > 0 then begin
          let share = pool * d.weight / total_weight / n in
          List.iter
            (fun v ->
              v.credits <- min t.cfg.credit_cap (v.credits + share);
              if v.state = Ready && v.priority <> Boost then begin
                let fresh = if v.credits > 0 then Under else Over in
                if fresh <> v.priority then begin
                  v.priority <- fresh;
                  enqueue t.cpus.(v.pcpu_id) v
                end
              end
              else refresh_priority v)
            live
        end)
      live_doms
  end;
  Array.iter (fun pc -> maybe_preempt t pc) t.cpus

let create ?(config = default_config) ~engine ~pcpus () =
  if pcpus <= 0 then invalid_arg "Credit_scheduler.create: need at least one pCPU";
  let t =
    {
      cfg = config;
      engine;
      cpus =
        Array.init pcpus (fun id ->
            {
              id;
              running = None;
              slice_end = 0;
              cpu_event = None;
              boostq = Queue.create ();
              underq = Queue.create ();
              overq = Queue.create ();
              busy = 0;
            });
      doms = [];
      next_dom_id = 0;
      next_vid = 0;
      next_pin = 0;
    }
  in
  ignore (Sim.Engine.every engine ~period:config.tick (fun () -> on_tick t) : Sim.Engine.handle);
  ignore
    (Sim.Engine.every engine ~period:config.accounting (fun () -> on_accounting t)
      : Sim.Engine.handle);
  t

let add_domain t ~name ~weight =
  if weight <= 0 then invalid_arg "Credit_scheduler.add_domain: weight must be positive";
  let d =
    {
      dom_id = t.next_dom_id;
      name;
      weight;
      vcpus = [];
      runtime = 0;
      waittime = 0;
      burst_hist = Array.make t.cfg.burst_bins 0;
      trace_on = false;
      trace = [];
      paused = false;
      dead = false;
    }
  in
  t.next_dom_id <- t.next_dom_id + 1;
  t.doms <- d :: t.doms;
  d

let add_vcpu t dom ?pin program =
  if dom.dead then invalid_arg "Credit_scheduler.add_vcpu: domain is dead";
  let pcpu_id =
    match pin with
    | Some p ->
        if p < 0 || p >= Array.length t.cpus then
          invalid_arg "Credit_scheduler.add_vcpu: bad pCPU pin";
        p
    | None ->
        let p = t.next_pin mod Array.length t.cpus in
        t.next_pin <- t.next_pin + 1;
        p
  in
  let v =
    {
      vid = t.next_vid;
      index = List.length dom.vcpus;
      dom;
      program;
      pcpu_id;
      state = Ready;
      priority = Under;
      remaining = 0;
      credits = t.cfg.credits_per_tick * 3;
      run_start = now t;
      last_charge = now t;
      boosted_at = now t;
      wake_handle = None;
      sleep_until = 0;
      sleep_left = 0;
      ready_since = now t;
      queue_token = 0;
    }
  in
  t.next_vid <- t.next_vid + 1;
  dom.vcpus <- dom.vcpus @ [ v ];
  if dom.paused then v.state <- Paused
  else begin
    let pc = t.cpus.(pcpu_id) in
    enqueue pc v;
    maybe_preempt t pc
  end;
  v

let send_ipi t dom target = ipi t dom target

let pause_domain t dom =
  if not dom.paused then begin
    dom.paused <- true;
    List.iter
      (fun v ->
        match v.state with
        | Running ->
            let pc = t.cpus.(v.pcpu_id) in
            stop_running t pc;
            v.state <- Paused;
            dispatch_next t pc
        | Ready ->
            end_wait t v;
            invalidate v;
            v.state <- Paused
        | Blocked ->
            (match v.wake_handle with
            | Some h ->
                Sim.Engine.cancel t.engine h;
                v.wake_handle <- None
            | None -> ());
            v.sleep_left <- max 0 (v.sleep_until - now t);
            v.state <- Paused
        | Paused | Dead -> ())
      dom.vcpus
  end

let resume_domain t dom =
  if dom.paused && not dom.dead then begin
    dom.paused <- false;
    List.iter
      (fun v ->
        if v.state = Paused then
          if v.sleep_left > 0 then begin
            v.state <- Blocked;
            let d = v.sleep_left in
            v.sleep_left <- 0;
            put_to_sleep t v d
          end
          else begin
            v.state <- Ready;
            v.ready_since <- now t;
            refresh_priority v;
            let pc = t.cpus.(v.pcpu_id) in
            enqueue pc v;
            maybe_preempt t pc
          end)
      dom.vcpus
  end

let remove_domain t dom =
  if not dom.dead then begin
    pause_domain t dom;
    List.iter
      (fun v ->
        invalidate v;
        v.state <- Dead)
      dom.vcpus;
    dom.dead <- true;
    t.doms <- List.filter (fun d -> d.dom_id <> dom.dom_id) t.doms
  end

(* --- Measurement hooks --------------------------------------------------- *)

let domain_runtime t dom =
  let live =
    List.fold_left
      (fun acc v -> if v.state = Running then acc + (now t - v.last_charge) else acc)
      0 dom.vcpus
  in
  dom.runtime + live

let domain_waittime t dom =
  let live =
    List.fold_left
      (fun acc v -> if v.state = Ready then acc + (now t - v.ready_since) else acc)
      0 dom.vcpus
  in
  dom.waittime + live

let burst_counts dom = Array.copy dom.burst_hist
let clear_burst_counts dom = Array.fill dom.burst_hist 0 (Array.length dom.burst_hist) 0

let set_burst_trace dom on =
  dom.trace_on <- on;
  if not on then dom.trace <- []

let burst_trace dom = List.rev dom.trace

let total_runtime t =
  List.fold_left (fun acc d -> acc + domain_runtime t d) 0 (domains t)

let busy_time t =
  Array.fold_left
    (fun acc pc ->
      let live = match pc.running with Some v -> now t - v.last_charge | None -> 0 in
      acc + pc.busy + live)
    0 t.cpus
