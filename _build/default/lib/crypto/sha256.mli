(** SHA-256 (FIPS 180-4), implemented from scratch on native ints.

    Used for all integrity measurements (PCR extends, quotes Q1..Q3 in the
    attestation protocol) and as the digest inside HMAC and RSA signatures. *)

type ctx

val init : unit -> ctx
val update : ctx -> string -> unit
val finalize : ctx -> string
(** 32-byte digest.  The context must not be reused afterwards. *)

val digest : string -> string
(** One-shot hash of a full string. *)

val digest_list : string list -> string
(** Hash of the concatenation, without building it. *)

val hex : string -> string
(** [hex s] is the digest of [s] in lower-case hex. *)
