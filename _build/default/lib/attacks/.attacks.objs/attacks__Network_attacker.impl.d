lib/attacks/network_attacker.ml: Bytes Char Hashtbl Net String
