(** Integrity Measurement Unit.

    Reads the measured-boot PCRs out of the Trust Module and the VM image
    hash recorded at launch — the measurements behind the Startup Integrity
    property (paper section 4.2). *)

val platform_measurement : Hypervisor.Server.t -> string option
(** PCR composite over the boot-chain registers.  [None] on servers without
    a Trust Module. *)

val image_measurement : Hypervisor.Server.t -> vid:string -> string option
(** Hash of the VM's image as measured when it was launched here. *)

val measure_image_for_launch : Hypervisor.Image.t -> string
(** The measurement taken just before a VM launch (startup attestation). *)
