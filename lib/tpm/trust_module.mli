(** The paper's hardware Trust Module (Figure 2).

    Per secure cloud server it provides:
    - a long-term identity keypair [{VKs, SKs}]; the private half never
      leaves the module,
    - a key generator that mints a fresh per-attestation session keypair
      [{AVKs, ASKs}], endorsing [AVKs] with [SKs] for the privacy CA,
    - a random-number generator,
    - Trust Evidence Registers: programmable counters that the Monitor
      Module loads with security measurements (e.g. the 30 CPU-burst
      interval bins of section 4.4.2),
    - a PCR bank for hash-chained integrity measurements, and
    - a crypto engine that signs measurement payloads with the session key.
*)

type t

val create : ?key_bits:int -> ?num_registers:int -> ?num_pcrs:int -> seed:string -> unit -> t
(** Defaults: 1024-bit keys, 64 evidence registers, 16 PCRs.  [seed] feeds
    the module's DRBG, keeping simulations reproducible. *)

val identity_public : t -> Crypto.Rsa.public
(** [VKs], used by the privacy CA to authenticate endorsements. *)

val pcrs : t -> Pcr.t

val random_nonce : t -> string
(** 16 fresh bytes from the module RNG. *)

val drbg : t -> Crypto.Drbg.t

(** {2 Trust Evidence Registers} *)

val num_registers : t -> int

val read_registers : t -> int array
(** A copy of the full bank. *)

val write_register : t -> int -> int -> unit
val add_register : t -> int -> int -> unit
val clear_registers : t -> unit

(** {2 Per-attestation session keys} *)

type session = {
  public : Crypto.Rsa.public;  (** AVKs *)
  endorsement : string;  (** [AVKs]SKs — signature binding AVKs to this module *)
}

val begin_session : t -> session
(** Generate a fresh [{AVKs, ASKs}]; the secret half stays inside. *)

val sign_with_session : t -> session -> string -> string option
(** Sign a payload with the session's [ASKs].  [None] if the session is
    unknown (e.g. already ended). *)

val end_session : t -> session -> unit
(** Forget the session secret. *)

val quote_batch : t -> session -> root:string -> nonce:string -> string option
(** Sign one Merkle root covering a whole batch of measurement reports —
    a single signature (and a single session keypair) regardless of batch
    size, which is what amortizes the Trust Module off the hot path.
    [None] if the session is unknown. *)

val batch_quote_payload : root:string -> nonce:string -> string
(** The exact bytes {!quote_batch} signs, exposed for verifiers. *)

val endorsement_payload : Crypto.Rsa.public -> string
(** The exact bytes [SKs] signs to endorse a session public key; exposed so
    verifiers (the privacy CA) can reconstruct them. *)

(** {2 Identity-key operations} *)

val sign_identity : t -> string -> string
(** Sign with [SKs] itself — used only for channel authentication, never for
    measurement payloads (which would link them to the server identity). *)

val decrypt_identity : t -> string -> string option
(** RSA-decrypt with [SKs] (secure-channel premaster secrets). *)
