lib/experiments/fig9.ml: Cloud Commands Common Core Format List Printf Property Sim
