test/test_verifier.ml: Alcotest Deduction List Model Printf Properties QCheck QCheck_alcotest Term Verifier
