(* Fault-injection experiment: attestation success rate and added latency
   under an adversarial (lossy) network.

   Each row builds a fresh cloud, launches one monitored VM over a clean
   network, then turns on a fault adversary and runs [rounds] one-time
   attestations (controller -> AS -> cloud server).  The retry/resync layer
   (Network.call_with_retry, secure-channel record caching and resets, the
   bounded re-attestation in lib/core) is what keeps the success rate up;
   at 100% loss every round must still terminate, with a degraded
   [Unknown] verdict. *)

open Core

type row = {
  label : string;
  rounds : int;
  healthy : int;  (* verdict Healthy *)
  unknown : int;  (* degraded verdict: path unavailable *)
  errors : int;  (* hard errors (should be 0 for pure loss) *)
  mean_ms : float;  (* mean simulated attestation latency *)
  added_ms : float;  (* latency added vs. the clean baseline *)
  drops : int;  (* messages the adversary dropped *)
  retries : int;  (* transport-level re-sends *)
}

type result = row list

let rounds_default = 20

let scenarios ~seed =
  [
    ("clean", fun (_ : Net.Network.t) -> ());
    ("p=0.10", fun net -> Net.Network.set_adversary net (Net.Fault.lossy ~drop_p:0.1 ~seed ()));
    ("p=0.20", fun net -> Net.Network.set_adversary net (Net.Fault.lossy ~drop_p:0.2 ~seed ()));
    ("p=0.30", fun net -> Net.Network.set_adversary net (Net.Fault.lossy ~drop_p:0.3 ~seed ()));
    ("p=0.50", fun net -> Net.Network.set_adversary net (Net.Fault.lossy ~drop_p:0.5 ~seed ()));
    ("every-3rd", fun net -> Net.Network.set_adversary net (Net.Fault.drop_nth 3));
    ("blackout", fun net -> Net.Network.set_adversary net (Net.Fault.blackout ()));
  ]

let run_one ~seed ~rounds install =
  let cloud = Cloud.build ~config:(Common.fast_config ~seed) () in
  let customer = Cloud.Customer.create cloud ~name:"alice" in
  let vid =
    match
      Cloud.Customer.launch customer ~image:"cirros" ~flavor:"small"
        ~properties:[ Property.Startup_integrity ] ()
    with
    | Ok info -> info.Commands.vid
    | Error e ->
        failwith (Format.asprintf "faults: launch failed: %a" Cloud.Customer.pp_error e)
  in
  let controller = Cloud.controller cloud in
  let net = Cloud.net cloud in
  install net;
  let drbg = Crypto.Drbg.create ~seed:("faults|" ^ string_of_int seed) in
  let healthy = ref 0 and unknown = ref 0 and errors = ref 0 in
  let total = ref 0 in
  for _ = 1 to rounds do
    let nonce = Crypto.Drbg.nonce drbg in
    let result, ledger =
      Controller.attest controller
        { Protocol.vid; property = Property.Startup_integrity; nonce }
    in
    total := !total + Ledger.total ledger;
    match result with
    | Ok creport -> (
        match creport.Protocol.report.Report.status with
        | Report.Healthy -> incr healthy
        | Report.Unknown _ -> incr unknown
        | Report.Compromised _ -> incr errors)
    | Error _ -> incr errors
  done;
  Net.Network.clear_adversary net;
  ( !healthy,
    !unknown,
    !errors,
    Sim.Time.to_ms !total /. float_of_int rounds,
    Net.Network.drop_count net,
    Net.Network.retry_count net )

let run ?(seed = 2015) ?(rounds = rounds_default) () =
  let rows =
    List.map
      (fun (label, install) ->
        let healthy, unknown, errors, mean_ms, drops, retries =
          run_one ~seed ~rounds install
        in
        { label; rounds; healthy; unknown; errors; mean_ms; added_ms = 0.0; drops; retries })
      (scenarios ~seed)
  in
  let baseline =
    match rows with [] -> 0.0 | clean :: _ -> clean.mean_ms
  in
  List.map (fun r -> { r with added_ms = r.mean_ms -. baseline }) rows

let print rows =
  Common.section "Faults: attestation under a lossy network (drop rate sweep)";
  Printf.printf "%-10s %7s %8s %8s %7s %9s %10s %7s %8s\n" "adversary" "rounds" "healthy"
    "unknown" "errors" "mean(ms)" "added(ms)" "drops" "retries";
  List.iter
    (fun r ->
      Printf.printf "%-10s %7d %8d %8d %7d %9.1f %10.1f %7d %8d\n" r.label r.rounds r.healthy
        r.unknown r.errors r.mean_ms r.added_ms r.drops r.retries)
    rows;
  print_newline ();
  List.iter
    (fun r ->
      let pct = 100.0 *. float_of_int r.healthy /. float_of_int r.rounds in
      Printf.printf "  %-10s success %5.1f%% %s\n" r.label pct (Common.bar (pct /. 10.0)))
    rows
