(** Shared last-level cache model.

    Co-resident VMs contend for the same cache sets, which is the medium of
    prime-probe covert and side channels (the paper's section 4.4 cites
    cache channels as the classic instance; CloudMonatt's extension point
    is monitoring {e multiple} covert-channel sources).

    The model is architectural, not timing-accurate: each set is an LRU
    list of [(owner, tag)] lines; an access either hits or misses (and
    fills).  Every miss is charged to the owner's current time window, so
    the Monitor Module can read a per-VM series of window miss counts —
    the raw material for pattern-based channel detection. *)

type t

val create :
  engine:Sim.Engine.t -> ?sets:int -> ?ways:int -> ?window:Sim.Time.t -> unit -> t
(** Defaults: 64 sets, 8 ways, 10 ms accounting windows. *)

val sets : t -> int
val ways : t -> int
val window : t -> Sim.Time.t

val access : t -> owner:string -> set:int -> tag:int -> bool
(** Access line [tag] in [set]; [true] on a miss (which fills the line,
    evicting the LRU one). *)

val fill_set : t -> owner:string -> set:int -> unit
(** Occupy every way of [set] with the owner's lines — the "prime" (or the
    sender's "thrash") step. *)

val probe : t -> owner:string -> sets:int list -> int
(** Re-access the owner's canonical lines in each set, counting misses
    (i.e. lines some other VM evicted) and re-filling them — the "probe"
    step.  Returns the total miss count. *)

val misses : t -> owner:string -> int
(** Total misses charged to this owner so far. *)

val miss_windows : t -> owner:string -> since:Sim.Time.t -> int array
(** Per-window miss counts from [since] (inclusive) up to now; windows with
    no activity are zero. *)

val forget_owner : t -> string -> unit
(** Drop an owner's lines and counters (VM terminated or migrated away). *)
