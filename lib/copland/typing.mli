(** Typing judgment for protocol phrases.

    A phrase is well-typed against a topology when every appraised slot
    indexes a placed VM and a real property, every delegation names a real
    AS cluster and only covers slots that cluster actually appraises, no
    delegation nests inside another (one sub-appraiser per branch, as in
    the paper's per-cluster AS split), and every layered appraisal only
    covers VMs on the very host whose backend the layer checks. *)

type ctx = {
  vms : int;  (** appraisable VM slots [0, vms) *)
  clusters : int;  (** AS clusters [0, clusters) *)
  properties : int;  (** property indices [0, properties) *)
  cluster_of : int -> int;  (** slot -> AS cluster *)
  host_of : int -> int;  (** slot -> host index, negative = unplaced *)
}

type error =
  | Bad_slot of int
  | Bad_property of int
  | Bad_cluster of int
  | Unplaced of int
  | Nested_delegation
  | Cluster_mismatch of { slot : int; expected : int; actual : int }
  | Host_mismatch of { slot : int; layer_slot : int }

val check : ctx -> Phrase.t -> (unit, error) result
val well_typed : ctx -> Phrase.t -> bool
val pp_error : Format.formatter -> error -> unit
val error_to_string : error -> string
