(** Execution environment for a phrase: the typing context plus the cost
    parameters {!Estimate} needs, derived from a live {!Core.Cloud} and the
    VM slot assignment. *)

type t = {
  typing : Typing.ctx;
  vids : string array;  (** slot -> vid *)
  host_name : int -> string option;  (** slot -> hosting server name *)
  backend_of : int -> Tpm.Backend.kind;  (** slot -> host's trust backend *)
  requests_of : int -> int;  (** property index -> measurement requests *)
  cache_possible : bool;  (** verdict cache enabled (hits possible) *)
  audit_possible : bool;  (** controller-side audit receipts enabled *)
}

val of_cloud : Core.Cloud.t -> vids:string array -> t
(** Snapshot the cloud's topology (placements, cluster routing, backends)
    into a phrase environment.  Re-derive after lifecycle changes. *)
