lib/net/secure_channel.ml: Ca Crypto Format Hashtbl Printf String Wire
