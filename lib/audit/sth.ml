type t = {
  log_id : string;
  size : int;
  root : string;
  at : Sim.Time.t;
  signature : string;
}

(* The signed payload is domain-separated from every other RSA signature in
   the system (AS reports, quotes, certificates), so an STH can never be
   replayed as one of those or vice versa. *)
let payload ~log_id ~size ~root ~at =
  Wire.Codec.encode (fun e ->
      Wire.Codec.Enc.str e "audit-sth|";
      Wire.Codec.Enc.str e log_id;
      Wire.Codec.Enc.int e size;
      Wire.Codec.Enc.str e root;
      Wire.Codec.Enc.int e at)

let sign key ~log_id ~size ~root ~at =
  { log_id; size; root; at; signature = Crypto.Rsa.sign key (payload ~log_id ~size ~root ~at) }

(* One tree head is verified many times over: by the controller accepting a
   receipt, by each gossiping auditor, and by every equivocation cross-check
   — memoized so only the first check pays the exponentiation. *)
let verify ~key t =
  Crypto.Rsa.verify_memo key ~signature:t.signature
    (payload ~log_id:t.log_id ~size:t.size ~root:t.root ~at:t.at)

let equal a b =
  String.equal a.log_id b.log_id
  && a.size = b.size
  && String.equal a.root b.root
  && a.at = b.at
  && String.equal a.signature b.signature

let encode e t =
  Wire.Codec.Enc.str e t.log_id;
  Wire.Codec.Enc.int e t.size;
  Wire.Codec.Enc.str e t.root;
  Wire.Codec.Enc.int e t.at;
  Wire.Codec.Enc.str e t.signature

let decode d =
  let log_id = Wire.Codec.Dec.str d in
  let size = Wire.Codec.Dec.int d in
  let root = Wire.Codec.Dec.str d in
  let at = Wire.Codec.Dec.int d in
  let signature = Wire.Codec.Dec.str d in
  { log_id; size; root; at; signature }

let to_string t = Wire.Codec.encode (fun e -> encode e t)
let of_string raw = Wire.Codec.decode_opt raw decode

let short_hex ?(n = 8) s =
  let b = Buffer.create (2 * n) in
  String.iteri (fun i c -> if i < n then Buffer.add_string b (Printf.sprintf "%02x" (Char.code c))) s;
  Buffer.contents b

let pp ppf t =
  Format.fprintf ppf "STH(%s, size=%d, root=%s, at=%a)" t.log_id t.size (short_hex t.root)
    Sim.Time.pp t.at
