(** SSL-style authenticated, encrypted channels.

    The paper assumes the customer, Cloud Controller, Attestation Server and
    secure Cloud Servers speak SSL; this module is that layer.  A handshake
    mutually authenticates both ends with CA-certified RSA identity keys and
    fresh randoms, derives symmetric session keys ([Kx], [Ky], [Kz] in
    Figure 3), and then protects each request/response with
    ChaCha20 + HMAC-SHA256 records carrying strict sequence numbers, so a
    network adversary's tampering, replay or reflection is detected.

    The server side is a network request handler that multiplexes any number
    of sessions; the client side wraps a transport function (normally
    {!Network.call} partially applied). *)

type error =
  [ `Auth_failure  (** bad certificate, signature or MAC *)
  | `Replay  (** sequence number mismatch *)
  | `Malformed
  | `Transport of string
  | `Rejected of string  (** server-side handshake refusal *) ]

val pp_error : Format.formatter -> error -> unit

val transient : error -> bool
(** Errors a retry or channel reset may cure — dropped or garbled messages,
    sequence desync, forgotten sessions — as opposed to policy refusals
    (bad certificate, peer not allowed) that will repeat identically. *)

val desync : error -> bool
(** Errors meaning the two ends disagree on sequence state, curable only by
    a fresh handshake ({!Client.reset}). Implies {!transient}. *)

(** A named principal: keypair plus CA-issued certificate. *)
module Identity : sig
  type t = { name : string; keypair : Crypto.Rsa.keypair; cert : Ca.cert }

  val make : Ca.t -> seed:string -> ?bits:int -> name:string -> unit -> t
end

module Server : sig
  type t

  val create :
    identity:Identity.t ->
    ca:Crypto.Rsa.public ->
    seed:string ->
    on_request:(peer:string -> string -> string) ->
    t
  (** [on_request ~peer payload] handles one decrypted application request
      from the authenticated principal [peer] and returns the reply
      plaintext. *)

  val handle : t -> string -> string
  (** The raw network handler: feeds handshake messages and data records to
      the state machine.  Register it with {!Network.register}. *)

  val accept_only : t -> (string -> bool) -> unit
  (** Restrict which authenticated peer names may complete a handshake. *)

  val sessions : t -> int

  val evict : t -> peer:string -> int
  (** Drop every established session with [peer] (e.g. after it announced a
      reconnect); returns how many were evicted. *)
end

module Client : sig
  type t

  val connect :
    identity:Identity.t ->
    ca:Crypto.Rsa.public ->
    seed:string ->
    peer:string ->
    transport:(string -> (string, string) result) ->
    (t, error) result
  (** Run the handshake.  [peer] is the expected certificate subject of the
      far end; a different (even validly certified) subject fails. *)

  val call : t -> string -> (string, error) result
  (** One encrypted, authenticated request/response exchange.  Sequence
      counters only advance on success, so a failed call leaves the channel
      in a well-defined state: re-sending the same plaintext re-sends the
      identical record, which an up-to-date server answers from its reply
      cache instead of re-executing. *)

  val call_robust : ?attempts:int -> t -> string -> (string, error) result
  (** [call] hardened against the adversarial network: on a {!transient}
      failure the same record is re-sent (served from the server's reply
      cache if it was already consumed); on a {!desync} failure the channel
      is {!reset} (fresh handshake) and the request re-sent under the new
      session.  At most [attempts] (default 3) calls in total.  Non-
      transient refusals fail immediately.  Note the resulting semantics
      are at-least-once across a reset: only idempotent requests (e.g.
      measurement collection) should ride this path. *)

  val reset : t -> (unit, error) result
  (** Drop the session and run a fresh handshake over the same transport,
      with fresh randoms.  Cures a sequence-counter desync after losses;
      pending server-side state for the old session is simply abandoned. *)

  val handshakes : t -> int
  (** Completed handshakes on this channel (1 after [connect]; more after
      resets). *)

  val peer : t -> string

  val peer_key : t -> Crypto.Rsa.public
  (** The peer's CA-certified public key, as authenticated during the
      handshake (callers use it to verify application-level signatures,
      e.g. attestation reports). *)
end
