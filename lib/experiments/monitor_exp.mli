(** Continuous-monitoring experiment: epoch-scheduled re-attestation under
    incident storms.

    Sweeps the freshness budget (the re-attestation period) x storm
    scenario over a monitored fleet of ~10^4 VMs ({!Fleet.Monitor} wired
    into {!Fleet.Driver}), reporting the probe ledger (scheduled / served /
    missed / shed / deduplicated), the fraction-of-fleet-fresh SLO series
    and, for rack-compromise storms, the time-to-detect.  On top of the
    sweep, the headline scenario — tightest budget, rack compromise — runs
    once per domain count, gating that every run is byte-identical
    ({!Fleet.Driver.fingerprint}), exactly as the fleet experiment gates
    its unmonitored scenario.

    Two SLOs feed CI through {!clean}: a planted rack compromise must be
    detected within two re-attestation periods, and the fleet-fresh
    fraction must be nonzero at end of run. *)

type row = {
  budget : Sim.Time.t;  (** freshness budget: the re-attestation period *)
  storm : string;
      (** ["none"] | ["rack-compromise"] | ["image-cve"] | ["migration-wave"] *)
  domains : int;  (** OCaml domains the run executed on *)
  host_wall_s : float;  (** real elapsed time of this [Fleet.Driver.run] *)
  r : Fleet.Driver.result;
}

type sharded = {
  curve : row list;  (** the headline scenario at each domain count *)
  identical : bool;  (** all fingerprints equal — the determinism gate *)
}

type result = { seed : int; scale : string; rows : row list; sharded : sharded }

val scenario :
  seed:int ->
  [ `Default | `Smoke ] ->
  Fleet.Driver.config * Sim.Time.t * Sim.Time.t list * Sim.Time.t * int list
(** The monitored-fleet scenario at the given scale: the (unmonitored)
    base driver config, the scheduler tick, the budgets swept, the storm
    time, and the domain counts of the headline curve. *)

val monitor_of :
  tick:Sim.Time.t ->
  budget:Sim.Time.t ->
  storms:Fleet.Monitor.storm list ->
  Fleet.Monitor.config
(** The sweep's monitor config for one budget: lead scales with the budget
    but always covers two ticks; recheck budget is half the budget. *)

val time_to_detect : Fleet.Driver.result -> Sim.Time.t option option
(** Detection delay of the run's rack-compromise storm ([detected_at -
    at]): [None] when the run planted no rack storm, [Some None] when one
    was planted but never detected. *)

val detect_bound : row -> Sim.Time.t
(** Two re-attestation periods: the time-to-detect SLO CI gates on.  One
    period is the worst-case gap before the next scheduled probe of a
    just-refreshed victim; the second absorbs queueing, shed-retry and
    cross-shard epoch delivery. *)

val run : ?seed:int -> ?scale:[ `Default | `Smoke ] -> unit -> result
(** [scale] defaults to [`Smoke] when the environment variable
    [CLOUDMONATT_FLEET_SCALE] is ["smoke"] (the CI setting), else
    [`Default]. *)

val identical_across_domains : result -> bool

val clean : result -> bool
(** The CI gate: fingerprints identical across the domain curve, every
    rack-compromise row detected within {!detect_bound}, and at least one
    row ends with a nonzero fleet-fresh fraction. *)

val print : result -> unit

val to_json : ?host:bool -> result -> Json.t
(** [host] (default true) includes the per-row [host_wall_s] and the
    sharded wall-clock curve — the only nondeterministic bytes in the
    document.  Pass [~host:false] to compare two runs for byte-identity. *)
