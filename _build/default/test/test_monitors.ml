(* Tests for the Monitor Module: measurement codecs, VMI, VMM profiler,
   integrity unit and the monitor kernel. *)

open Monitors

let qtest = QCheck_alcotest.to_alcotest

(* --- Measurement codecs ------------------------------------------------------- *)

let request_gen =
  QCheck.Gen.oneof
    [
      QCheck.Gen.return Measurement.Platform_integrity;
      QCheck.Gen.return Measurement.Vm_image_integrity;
      QCheck.Gen.return Measurement.Task_list;
      QCheck.Gen.return Measurement.Cpu_burst_histogram;
      QCheck.Gen.map (fun w -> Measurement.Cpu_time w) (QCheck.Gen.int_range 0 10_000_000);
      QCheck.Gen.return Measurement.Cache_miss_pattern;
      QCheck.Gen.return Measurement.Ima_log;
    ]

let requests_roundtrip =
  QCheck.Test.make ~name:"requests roundtrip" ~count:200
    (QCheck.make (QCheck.Gen.list_size (QCheck.Gen.int_range 0 8) request_gen))
    (fun rs -> Measurement.decode_requests (Measurement.encode_requests rs) = Some rs)

let value_gen =
  let open QCheck.Gen in
  oneof
    [
      map (fun s -> Measurement.Measured_platform s) string;
      map (fun s -> Measurement.Measured_image s) string;
      map2
        (fun kernel visible -> Measurement.Measured_tasks { kernel; visible })
        (list_size (int_range 0 5) string)
        (list_size (int_range 0 5) string);
      map
        (fun a -> Measurement.Measured_histogram (Array.map abs a))
        (array_size (int_range 0 30) nat);
      map2
        (fun (vtime, steal) (window, vcpus) ->
          Measurement.Measured_cpu { vtime; steal; window; vcpus })
        (pair nat nat)
        (pair nat (int_range 0 64));
      map
        (fun a -> Measurement.Measured_miss_windows (Array.map abs a))
        (array_size (int_range 0 40) nat);
      map
        (fun entries -> Measurement.Measured_ima entries)
        (list_size (int_range 0 6) (pair string string));
    ]

let values_roundtrip =
  QCheck.Test.make ~name:"values roundtrip" ~count:200
    (QCheck.make (QCheck.Gen.list_size (QCheck.Gen.int_range 0 6) value_gen))
    (fun vs -> Measurement.decode_values (Measurement.encode_values vs) = Some vs)

let test_decode_garbage () =
  Alcotest.(check bool) "garbage requests" true (Measurement.decode_requests "junk" = None);
  Alcotest.(check bool) "garbage values" true (Measurement.decode_values "junk" = None)

(* --- Test rig -------------------------------------------------------------------- *)

let make_rig () =
  let engine = Sim.Engine.create () in
  let server =
    Hypervisor.Server.create ~engine ~name:"s" ~pcpus:2 ~key_bits:512 ~seed:"mon" ()
  in
  let vm =
    Hypervisor.Vm.make ~vid:"v1" ~owner:"a" ~image:Hypervisor.Image.cirros
      ~flavor:Hypervisor.Flavor.small
      ~programs:(fun () -> [ Hypervisor.Program.busy_loop () ])
      ()
  in
  let inst = Result.get_ok (Hypervisor.Server.launch server ~pin:0 vm) in
  (engine, server, inst)

(* --- VMI tool ---------------------------------------------------------------------- *)

let test_vmi_sees_hidden () =
  let _, server, inst = make_rig () in
  ignore (Hypervisor.Guest_os.spawn inst.vm.guest ~hidden:true "stealth" : Hypervisor.Guest_os.process);
  let kernel = Option.get (Vmi_tool.kernel_task_list server ~vid:"v1") in
  let visible = Option.get (Vmi_tool.guest_reported_task_list server ~vid:"v1") in
  Alcotest.(check bool) "VMI sees it" true (List.mem "stealth" kernel);
  Alcotest.(check bool) "guest does not" false (List.mem "stealth" visible)

let test_vmi_unknown_vm () =
  let _, server, _ = make_rig () in
  Alcotest.(check bool) "unknown VM" true (Vmi_tool.kernel_task_list server ~vid:"nope" = None)

(* --- VMM profiler ------------------------------------------------------------------- *)

let test_profiler_window () =
  let engine, server, _ = make_rig () in
  let prof = Vmm_profile.create server in
  Sim.Engine.run_until engine (Sim.Time.sec 10);
  Vmm_profile.sample_now prof;
  match Vmm_profile.cpu_usage prof ~vid:"v1" ~window:(Sim.Time.sec 2) with
  | None -> Alcotest.fail "expected usage"
  | Some (run, steal) ->
      (* Solo busy VM: ran the whole window, no steal. *)
      Alcotest.(check bool)
        (Printf.sprintf "ran ~2s (got %.2f)" (Sim.Time.to_sec run))
        true
        (abs_float (Sim.Time.to_sec run -. 2.0) < 0.2);
      Alcotest.(check bool) "no steal" true (Sim.Time.to_sec steal < 0.1)

let test_profiler_contended () =
  let engine, server, _ = make_rig () in
  let co =
    Hypervisor.Vm.make ~vid:"v2" ~owner:"b" ~image:Hypervisor.Image.cirros
      ~flavor:Hypervisor.Flavor.small
      ~programs:(fun () -> [ Hypervisor.Program.busy_loop () ])
      ()
  in
  ignore (Result.get_ok (Hypervisor.Server.launch server ~pin:0 co) : Hypervisor.Server.instance);
  let prof = Vmm_profile.create server in
  Sim.Engine.run_until engine (Sim.Time.sec 10);
  Vmm_profile.sample_now prof;
  match Vmm_profile.cpu_usage prof ~vid:"v1" ~window:(Sim.Time.sec 4) with
  | None -> Alcotest.fail "expected usage"
  | Some (run, steal) ->
      Alcotest.(check bool)
        (Printf.sprintf "fair share ~2s (got %.2f)" (Sim.Time.to_sec run))
        true
        (abs_float (Sim.Time.to_sec run -. 2.0) < 0.3);
      Alcotest.(check bool)
        (Printf.sprintf "steal ~2s (got %.2f)" (Sim.Time.to_sec steal))
        true
        (abs_float (Sim.Time.to_sec steal -. 2.0) < 0.3)

let test_profiler_unknown_vm () =
  let _, server, _ = make_rig () in
  let prof = Vmm_profile.create server in
  Alcotest.(check bool) "unknown" true (Vmm_profile.cpu_time prof ~vid:"zz" ~window:1000 = None)

(* --- Integrity unit -------------------------------------------------------------------- *)

let test_integrity_platform () =
  let _, server, _ = make_rig () in
  Alcotest.(check (option string)) "matches golden"
    (Some Hypervisor.Server.golden_platform_measurement)
    (Integrity_unit.platform_measurement server)

let test_integrity_image () =
  let _, server, _ = make_rig () in
  Alcotest.(check (option string)) "image hash"
    (Some (Hypervisor.Image.hash Hypervisor.Image.cirros))
    (Integrity_unit.image_measurement server ~vid:"v1")

let test_integrity_insecure_server () =
  let engine = Sim.Engine.create () in
  let server =
    Hypervisor.Server.create ~engine ~name:"ns" ~secure:false ~key_bits:512 ~seed:"x" ()
  in
  Alcotest.(check bool) "no platform measurement" true
    (Integrity_unit.platform_measurement server = None)

(* --- Monitor kernel --------------------------------------------------------------------- *)

let test_kernel_collect_all () =
  let engine, server, _ = make_rig () in
  let kernel = Monitor_kernel.create server in
  Sim.Engine.run_until engine (Sim.Time.sec 5);
  match
    Monitor_kernel.collect kernel ~vid:"v1"
      [
        Measurement.Platform_integrity;
        Measurement.Vm_image_integrity;
        Measurement.Task_list;
        Measurement.Cpu_burst_histogram;
        Measurement.Cpu_time (Sim.Time.sec 1);
      ]
  with
  | Error _ -> Alcotest.fail "collect failed"
  | Ok values ->
      Alcotest.(check int) "five values in order" 5 (List.length values);
      (match values with
      | [ Measurement.Measured_platform _; Measurement.Measured_image _;
          Measurement.Measured_tasks _; Measurement.Measured_histogram _;
          Measurement.Measured_cpu _ ] ->
          ()
      | _ -> Alcotest.fail "wrong shapes")

let test_kernel_unknown_vm () =
  let _, server, _ = make_rig () in
  let kernel = Monitor_kernel.create server in
  match Monitor_kernel.collect kernel ~vid:"nope" [ Measurement.Task_list ] with
  | Error (`Unknown_vm "nope") -> ()
  | _ -> Alcotest.fail "expected Unknown_vm"

let test_kernel_histogram_detection_period () =
  let engine, server, _ = make_rig () in
  (* contention so bursts are bounded at 30ms *)
  let co =
    Hypervisor.Vm.make ~vid:"v2" ~owner:"b" ~image:Hypervisor.Image.cirros
      ~flavor:Hypervisor.Flavor.small
      ~programs:(fun () -> [ Hypervisor.Program.busy_loop () ])
      ()
  in
  ignore (Result.get_ok (Hypervisor.Server.launch server ~pin:0 co) : Hypervisor.Server.instance);
  let kernel = Monitor_kernel.create server in
  Sim.Engine.run_until engine (Sim.Time.sec 5);
  let total values =
    match values with
    | Ok [ Measurement.Measured_histogram h ] -> Array.fold_left ( + ) 0 h
    | _ -> -1
  in
  let first = total (Monitor_kernel.collect kernel ~vid:"v1" [ Measurement.Cpu_burst_histogram ]) in
  Alcotest.(check bool) "first collection sees bursts" true (first > 10);
  let second = total (Monitor_kernel.collect kernel ~vid:"v1" [ Measurement.Cpu_burst_histogram ]) in
  Alcotest.(check int) "immediately re-collected: empty detection period" 0 second;
  Sim.Engine.run_until engine (Sim.Time.sec 10);
  let third = total (Monitor_kernel.collect kernel ~vid:"v1" [ Measurement.Cpu_burst_histogram ]) in
  Alcotest.(check bool) "new period sees new bursts" true (third > 10)

let test_kernel_loads_registers () =
  let engine, server, _ = make_rig () in
  let kernel = Monitor_kernel.create server in
  Sim.Engine.run_until engine (Sim.Time.sec 3);
  ignore (Monitor_kernel.collect kernel ~vid:"v1" [ Measurement.Cpu_time (Sim.Time.sec 1) ]);
  match Hypervisor.Server.trust_module server with
  | None -> Alcotest.fail "trust module expected"
  | Some tm ->
      (* Register 30 holds the CPU measure (paper 4.5.2). *)
      Alcotest.(check bool) "register 30 loaded" true
        ((Tpm.Trust_module.read_registers tm).(30) > 0)

let test_kernel_intrusion_pause () =
  let _, server, _ = make_rig () in
  let kernel = Monitor_kernel.create server in
  Alcotest.(check int) "passive monitors are free" 0
    (Monitor_kernel.intrusion_pause kernel
       [ Measurement.Cpu_burst_histogram; Measurement.Cpu_time 0; Measurement.Platform_integrity ]);
  Alcotest.(check bool) "VMI probe pauses the VM" true
    (Monitor_kernel.intrusion_pause kernel [ Measurement.Task_list ] > 0)

let () =
  Alcotest.run "monitors"
    [
      ( "measurement",
        [
          qtest requests_roundtrip;
          qtest values_roundtrip;
          Alcotest.test_case "garbage rejected" `Quick test_decode_garbage;
        ] );
      ( "vmi",
        [
          Alcotest.test_case "sees hidden processes" `Quick test_vmi_sees_hidden;
          Alcotest.test_case "unknown vm" `Quick test_vmi_unknown_vm;
        ] );
      ( "profiler",
        [
          Alcotest.test_case "window" `Quick test_profiler_window;
          Alcotest.test_case "contended" `Quick test_profiler_contended;
          Alcotest.test_case "unknown vm" `Quick test_profiler_unknown_vm;
        ] );
      ( "integrity",
        [
          Alcotest.test_case "platform" `Quick test_integrity_platform;
          Alcotest.test_case "image" `Quick test_integrity_image;
          Alcotest.test_case "insecure server" `Quick test_integrity_insecure_server;
        ] );
      ( "kernel",
        [
          Alcotest.test_case "collect all" `Quick test_kernel_collect_all;
          Alcotest.test_case "unknown vm" `Quick test_kernel_unknown_vm;
          Alcotest.test_case "histogram detection period" `Quick
            test_kernel_histogram_detection_period;
          Alcotest.test_case "loads registers" `Quick test_kernel_loads_registers;
          Alcotest.test_case "intrusion pause" `Quick test_kernel_intrusion_pause;
        ] );
    ]
