(** Figure 6: performance impact of CPU-availability attacks.

    Victim VMs run the SPEC-like programs (bzip2, hmmer, astar) while a
    co-resident attacker VM on the same pCPU runs: nothing (idle), each of
    the six cloud benchmarks, or the boost-abusing CPU-availability attack.
    Reports the victim's execution time relative to running alone.  Paper
    shape: IO-bound neighbours ~1x, CPU-bound neighbours ~2x (fair share),
    the attack >10x. *)

type cell = { victim : string; attacker : string; relative_time : float }

type result = { cells : cell list; attackers : string list; victims : string list }

val attacker_configs : string list
(** "idle", the six benchmarks, "CPU_avail" (the attack). *)

val run : ?seed:int -> unit -> result
val print : result -> unit
