(** Ephemeral vTPM — a migratable software trust module (e-vTPM model).

    The module state (identity key, evidence registers, PCR bank, binding
    epoch) is serializable because a vTPM lives {e inside} the attested
    image.  Mobility is governed by an explicit binding discipline:

    - every session-key endorsement embeds the current {e binding epoch},
    - {!restore_state} (migrate, suspend/resume, clone) marks the module
      {e stale}; a stale module still quotes, but its endorsements carry a
      stale marker so no verifier certifies them,
    - {!rebind} — the explicit re-registration step with the Privacy CA —
      bumps the epoch and clears staleness.

    A quote minted from restored-but-not-rebound state must therefore never
    verify as Healthy anywhere downstream. *)

type t

val create : ?key_bits:int -> ?num_registers:int -> ?num_pcrs:int -> seed:string -> unit -> t
(** Same defaults as {!Trust_module.create}; the DRBG is seeded from
    ["evtpm|" ^ seed] so an Evtpm never shares a key stream with a classic
    module built from the same seed. *)

val identity_public : t -> Crypto.Rsa.public
val pcrs : t -> Pcr.t
val random_nonce : t -> string
val drbg : t -> Crypto.Drbg.t

val binding_epoch : t -> int
(** Starts at 0; bumped only by {!rebind}. *)

val stale : t -> bool
(** True from {!restore_state} until the next {!rebind}. *)

val num_registers : t -> int
val read_registers : t -> int array
val write_register : t -> int -> int -> unit
val add_register : t -> int -> int -> unit
val clear_registers : t -> unit

val endorsement_payload : epoch:int -> stale:bool -> Crypto.Rsa.public -> string
(** The exact bytes the identity key signs to endorse a session key; the
    epoch and stale marker are inside the signed bytes, so a verifier
    reconstructing the payload learns the module's binding status. *)

val begin_session : t -> Trust_module.session
val sign_with_session : t -> Trust_module.session -> string -> string option
val end_session : t -> Trust_module.session -> unit
val quote_batch : t -> Trust_module.session -> root:string -> nonce:string -> string option

val sign_identity : t -> string -> string
val decrypt_identity : t -> string -> string option

val save_state : t -> (string, string) result
(** Serialize the full module state (epoch, identity keypair, registers,
    PCR snapshot).  The stale flag is not part of the image: restoring is
    what makes state stale. *)

val restore_state : t -> string -> (unit, string) result
(** Replace this module's state with a saved image and mark the module
    stale.  Open sessions are dropped.  Fails without touching the module
    on a malformed image or a geometry mismatch (key size, register
    count, PCR count). *)

val rebind : t -> int
(** Re-registration: bump the binding epoch, clear staleness, return the
    new epoch.  The caller must mirror the new epoch to the Privacy CA
    for certification to resume. *)
