lib/verifier/properties.ml: Deduction Format List Model Printf String Term
