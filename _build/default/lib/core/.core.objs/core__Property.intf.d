lib/core/property.mli: Format Wire
