type planted = {
  bug_name : string;
  caught : bool;
  found_at_seed : int;
  shrunk_ops : int;
  repro : string;
}

type result = {
  seed : int;
  scale : string;
  report : Fuzz.Campaign.report;
  fleet_runs : int;
  fleet_violations : Fuzz.Fleet_props.violation list;
  planted : planted list;
}

let scale_of_env () =
  match Sys.getenv_opt "CLOUDMONATT_FLEET_SCALE" with
  | Some "smoke" -> `Smoke
  | _ -> `Default

(* Mutation testing: hunt for the planted bug with the cache oracle, then
   shrink the first catch.  The hunt replays a small pinned corpus of
   directed histories first, then falls back to the campaign's generator
   and seed ladder, so it is as deterministic as the campaign itself.  The
   corpus matters for mutants whose trigger is a rare op sequence: the
   resume mutant needs suspend -> attest -> resume -> attest inside one
   TTL window, which the generator first produces around seed 2510. *)
let resume_corpus = [ "seed=7 ops=L0.1.0;c5000;S0;a0.1;R0;a0.1" ]

(* The rebind mutant needs a vTPM cycle on the e-vTPM host followed by a
   fresh attest of the same VM before any rebind. *)
let rebind_corpus = [ "seed=5 ops=L0.1.0;L0.1.0;vs1;a1.0" ]

(* The lazy-monitor mutant only wakes at op boundaries, so it needs an
   armed monitor followed by one advance longer than the freshness bound. *)
let monitor_corpus = [ "seed=3 ops=L0.1.0;me200;t5000" ]

let hunt ?(corpus = []) ?(oracle = "cache-consistency") ~bug ~bug_name ~seed ~max_runs ~ops
    () =
  let uncaught = { bug_name; caught = false; found_at_seed = -1; shrunk_ops = 0; repro = "" } in
  let catches scenario =
    match Fuzz.Replay.run ~bug scenario with
    | exception _ -> false
    | out ->
        List.exists
          (fun (v : Fuzz.Oracle.violation) -> v.oracle = oracle)
          out.Fuzz.Replay.violations
  in
  let finish scenario =
    let shrunk, _ = Fuzz.Shrink.minimize ~bug ~oracle scenario in
    {
      bug_name;
      caught = true;
      found_at_seed = scenario.Fuzz.Op.seed;
      shrunk_ops = List.length shrunk.Fuzz.Op.ops;
      repro = Fuzz.Op.to_string shrunk;
    }
  in
  match List.find_opt catches (List.filter_map Fuzz.Op.of_string corpus) with
  | Some scenario -> finish scenario
  | None ->
      let rec go i =
        if i >= max_runs then uncaught
        else
          let scenario = Fuzz.Gen.generate ~seed:(seed + i) ~ops in
          if catches scenario then finish scenario else go (i + 1)
      in
      go 0

let run ?(seed = 2015) ?scale () =
  let scale = match scale with Some s -> s | None -> scale_of_env () in
  let runs_default, scale_name =
    match scale with `Default -> (1000, "default") | `Smoke -> (200, "smoke")
  in
  let runs =
    match Option.bind (Sys.getenv_opt "CLOUDMONATT_FUZZ_RUNS") int_of_string_opt with
    | Some n when n > 0 -> n
    | _ -> runs_default
  in
  let ops_per_run = 30 in
  let report =
    Fuzz.Campaign.campaign ~seed0:seed ~runs ~ops_per_run ()
  in
  let fleet_runs = max 10 (runs / 8) in
  let fleet_violations = Fuzz.Fleet_props.campaign ~seed0:seed ~runs:fleet_runs in
  let hunt_runs = max 50 (runs / 4) in
  let planted =
    [
      hunt ~bug:Fuzz.Replay.Skip_invalidate_on_migrate ~bug_name:"skip-invalidate-on-migrate"
        ~seed ~max_runs:hunt_runs ~ops:ops_per_run ();
      hunt ~corpus:resume_corpus ~bug:Fuzz.Replay.Skip_invalidate_on_resume
        ~bug_name:"skip-invalidate-on-resume" ~seed ~max_runs:hunt_runs ~ops:ops_per_run ();
      hunt ~corpus:rebind_corpus ~oracle:"vtpm-stale-binding" ~bug:Fuzz.Replay.Rebind_on_restore
        ~bug_name:"rebind-on-restore" ~seed ~max_runs:hunt_runs ~ops:ops_per_run ();
      hunt ~corpus:monitor_corpus ~oracle:"monitor-freshness" ~bug:Fuzz.Replay.Lazy_monitor
        ~bug_name:"lazy-monitor" ~seed ~max_runs:hunt_runs ~ops:ops_per_run ();
    ]
  in
  { seed; scale = scale_name; report; fleet_runs; fleet_violations; planted }

let clean r =
  Fuzz.Campaign.clean r.report
  && r.fleet_violations = []
  && List.for_all (fun p -> p.caught) r.planted

let repro_lines r =
  List.map (fun (f : Fuzz.Campaign.failure) -> f.repro) r.report.Fuzz.Campaign.failures
  @ List.filter_map (fun p -> if p.caught then Some p.repro else None) r.planted

let print r =
  Common.section
    (Printf.sprintf "Fuzz: scenario campaign (seed %d, %s scale)" r.seed r.scale);
  Format.printf "%a@." Fuzz.Campaign.pp_report r.report;
  Printf.printf "fleet properties: %d random configs, %d violation(s)\n" r.fleet_runs
    (List.length r.fleet_violations);
  List.iter
    (fun v -> Format.printf "  %a@." Fuzz.Fleet_props.pp_violation v)
    r.fleet_violations;
  Printf.printf "mutation testing (planted bugs):\n";
  List.iter
    (fun p ->
      if p.caught then
        Printf.printf "  %-26s caught at seed %d, shrunk to %d op(s)\n    repro: %s\n"
          p.bug_name p.found_at_seed p.shrunk_ops p.repro
      else Printf.printf "  %-26s NOT CAUGHT\n" p.bug_name)
    r.planted;
  Printf.printf "verdict: %s\n" (if clean r then "clean" else "VIOLATIONS FOUND")

let to_json r =
  let failure_to_json (f : Fuzz.Campaign.failure) =
    Json.Obj
      [
        ("seed", Json.Int f.scenario.Fuzz.Op.seed);
        ("oracle", Json.Str f.first.Fuzz.Oracle.oracle);
        ("op_index", Json.Int f.first.Fuzz.Oracle.op_index);
        ("detail", Json.Str f.first.Fuzz.Oracle.detail);
        ("shrunk_ops", Json.Int (List.length f.shrunk.Fuzz.Op.ops));
        ("repro", Json.Str f.repro);
      ]
  in
  let planted_to_json p =
    Json.Obj
      [
        ("bug", Json.Str p.bug_name);
        ("caught", Json.Bool p.caught);
        ("found_at_seed", Json.Int p.found_at_seed);
        ("shrunk_ops", Json.Int p.shrunk_ops);
        ("repro", Json.Str p.repro);
      ]
  in
  let rep = r.report in
  Json.Obj
    [
      ("seed", Json.Int r.seed);
      ("scale", Json.Str r.scale);
      ("runs", Json.Int rep.Fuzz.Campaign.runs);
      ("ops_per_run", Json.Int rep.Fuzz.Campaign.ops_per_run);
      ("total_ops", Json.Int rep.Fuzz.Campaign.total_ops);
      ("total_vms", Json.Int rep.Fuzz.Campaign.total_vms);
      ("total_attests", Json.Int rep.Fuzz.Campaign.total_attests);
      ("failures", Json.List (List.map failure_to_json rep.Fuzz.Campaign.failures));
      ("determinism_mismatches", Json.Int rep.Fuzz.Campaign.determinism_mismatches);
      ("batch_twins_checked", Json.Int rep.Fuzz.Campaign.batch_checked);
      ( "batch_mismatches",
        Json.List
          (List.map
             (fun (seed, detail) ->
               Json.Obj [ ("seed", Json.Int seed); ("detail", Json.Str detail) ])
             rep.Fuzz.Campaign.batch_mismatches) );
      ("fleet_runs", Json.Int r.fleet_runs);
      ( "fleet_violations",
        Json.List
          (List.map
             (fun (v : Fuzz.Fleet_props.violation) ->
               Json.Obj
                 [
                   ("oracle", Json.Str v.oracle);
                   ("seed", Json.Int v.seed);
                   ("detail", Json.Str v.detail);
                 ])
             r.fleet_violations) );
      ("planted", Json.List (List.map planted_to_json r.planted));
      ("clean", Json.Bool (clean r));
    ]
