lib/experiments/cache_exp.ml: Array Attacks Common Core Format Hypervisor List Printf Sim
