lib/core/ledger.ml: Format Hashtbl List Option Sim
