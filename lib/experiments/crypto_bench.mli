(** Host wall-clock micro-benchmark of the RSA hot path (sign/verify ops/s
    at 512/1024/2048 bits, CRT and window ablations, memo hit/miss).  This
    is the one experiment that reports real CPU time rather than simulated
    time; its output backs the calibrated {!Core.Costs} constants.  Set
    [CLOUDMONATT_CRYPTO_SCALE=smoke] for a fast reduced-budget sweep. *)

type result

val run : seed:int -> unit -> result
val print : result -> unit
val to_json : seed:int -> result -> Json.t
