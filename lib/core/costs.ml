let ms = Sim.Time.ms

(* Attestation path.  A hardware TPM takes hundreds of milliseconds for RSA
   key generation and signing; the TPM emulator the paper integrates is
   faster but the network dominates either way (paper 7.1.1).

   quote_sign is calibrated against the host crypto bench (BENCH_crypto.json):
   the emulator's RSA private operation now runs CRT + sliding-window
   Montgomery, measured 5.4x faster at the 1024-bit quote-key size than the
   full-width path this constant was first calibrated to (140 ms -> 26 ms).
   signature_verify stays where it was: the public exponent 65537 never used
   the window or CRT, and the verify memo cannot help on the cold path
   because a fresh-nonce quote is always a memo miss. *)
let session_keygen = ms 320
let quote_sign = ms 26
let signature_verify = ms 8
let report_sign = ms 25
let pca_certify = ms 45
let measurement_collect = ms 18
let interpret = ms 30
let db_lookup = ms 12
let handshake_crypto = ms 60

(* Per-backend attestation-path costs.  The classic constants above stay the
   calibration anchors; the other backends scale them by where their crypto
   runs.  An ephemeral vTPM is host software (no slow device engine, but it
   still generates a fresh RSA session key); a CVM report device signs with a
   pre-fused platform-derived key on dedicated hardware, so "keygen" is only
   key derivation.  CVM verification swaps the Privacy-CA certificate check
   for walking the two-link platform certificate chain: two RSA verifies. *)
let evtpm_session_keygen = ms 70
let evtpm_quote_sign = ms 9
let cvm_session_keygen = ms 40
let cvm_quote_sign = ms 6
let cvm_chain_verify = signature_verify + signature_verify
let evtpm_state_save = ms 12
let evtpm_state_restore = ms 15
let evtpm_rebind = pca_certify

(* Layered attestation: before trusting a VM quote, the appraiser checks the
   freshness of the host's trust backend (binding epoch + stale flag).  This
   is a local table walk plus one hash comparison — cheap next to any RSA
   term, but nonzero so protocol terms that layer the check are measurably
   dearer than ones that skip it. *)
let layer_appraise = ms 4

let session_keygen_for = function
  | Tpm.Backend.Classic -> session_keygen
  | Tpm.Backend.Evtpm -> evtpm_session_keygen
  | Tpm.Backend.Cvm_report -> cvm_session_keygen

let quote_sign_for = function
  | Tpm.Backend.Classic -> quote_sign
  | Tpm.Backend.Evtpm -> evtpm_quote_sign
  | Tpm.Backend.Cvm_report -> cvm_quote_sign

(* Batched attestation.  One session keypair and one quote signature cover a
   whole batch of measurement reports; what remains per report is Merkle
   hashing, three orders of magnitude cheaper than the RSA operations it
   displaces (the micro bench puts SHA-256 at ~12 us/KB of host time; 40 us
   models the Trust Module's slower internal engine). *)
let merkle_hash = Sim.Time.us 40

(* Trust-Module side: build the tree, mint one session key, sign the root. *)
let batch_quote_cost ~batch =
  session_keygen + quote_sign + (Crypto.Merkle.node_count batch * merkle_hash)

let batch_quote_cost_for ~batch kind =
  session_keygen_for kind + quote_sign_for kind
  + (Crypto.Merkle.node_count batch * merkle_hash)

(* Appraiser side: one RSA verification for the whole batch, then per report
   a leaf hash plus an O(log n) inclusion-proof walk. *)
let batch_verify_cost ~batch =
  signature_verify + (batch * (1 + Crypto.Merkle.max_proof_length batch) * merkle_hash)

(* Amortized per-report Trust-Module shares, for display and calibration
   (integer division: the driver charges whole batches, never these). *)
let amortized_session_keygen ~batch = session_keygen / max 1 batch
let amortized_quote_sign ~batch = quote_sign / max 1 batch

(* Transparency log (lib/audit).  Appending a verdict rehashes the leaf and
   the O(log n) right-spine interiors; proofs are O(log n) hash walks; tree
   heads are RSA operations in the same class as report signing. *)
let audit_append ~size = (1 + Crypto.Merkle.max_proof_length (max 1 size)) * merkle_hash
let audit_proof ~size = max 1 (Crypto.Merkle.max_proof_length (max 1 size)) * merkle_hash
let sth_sign = ms 25
let sth_verify = ms 8

(* Customer-side receipt check: one STH signature verification plus the
   inclusion-proof walk. *)
let audit_receipt_verify ~size = sth_verify + audit_proof ~size

(* Launch stages, calibrated to Figure 9's 3-6 s totals. *)
let scheduling_base = ms 280
let scheduling_per_candidate = ms 25
let networking = ms 750
let mapping_base = ms 220
let mapping_per_gb = ms 4
let spawn_base = ms 900
let spawn_per_image_mb = Sim.Time.us 3200
let spawn_per_mem_gb = ms 90

(* Responses (Figure 11). *)
let terminate_base = ms 450
let suspend_base = ms 800
let suspend_per_mem_gb = ms 350
let resume_base = ms 600
let migration_dirty_fraction = 0.20
let migration_base = ms 2500
