lib/hypervisor/image.mli:
