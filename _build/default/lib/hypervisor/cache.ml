type line = { owner : string; tag : int }

type t = {
  engine : Sim.Engine.t;
  nsets : int;
  nways : int;
  window : Sim.Time.t;
  sets_arr : line list array; (* each list: MRU first, length <= nways *)
  miss_bins : (string, (int, int) Hashtbl.t) Hashtbl.t; (* owner -> window idx -> count *)
  totals : (string, int) Hashtbl.t;
}

let create ~engine ?(sets = 64) ?(ways = 8) ?(window = Sim.Time.ms 10) () =
  if sets <= 0 || ways <= 0 then invalid_arg "Cache.create: sets and ways must be positive";
  if window <= 0 then invalid_arg "Cache.create: window must be positive";
  {
    engine;
    nsets = sets;
    nways = ways;
    window;
    sets_arr = Array.make sets [];
    miss_bins = Hashtbl.create 8;
    totals = Hashtbl.create 8;
  }

let sets t = t.nsets
let ways t = t.nways
let window t = t.window

let check_set t set =
  if set < 0 || set >= t.nsets then invalid_arg "Cache: set index out of range"

let record_miss t owner =
  let idx = Sim.Engine.now t.engine / t.window in
  let bins =
    match Hashtbl.find_opt t.miss_bins owner with
    | Some b -> b
    | None ->
        let b = Hashtbl.create 32 in
        Hashtbl.replace t.miss_bins owner b;
        b
  in
  Hashtbl.replace bins idx (1 + Option.value ~default:0 (Hashtbl.find_opt bins idx));
  Hashtbl.replace t.totals owner (1 + Option.value ~default:0 (Hashtbl.find_opt t.totals owner))

let access t ~owner ~set ~tag =
  check_set t set;
  let lines = t.sets_arr.(set) in
  let here l = String.equal l.owner owner && l.tag = tag in
  if List.exists here lines then begin
    (* Hit: move to MRU position. *)
    t.sets_arr.(set) <- { owner; tag } :: List.filter (fun l -> not (here l)) lines;
    false
  end
  else begin
    (* Miss: fill, evicting the LRU line if the set is full. *)
    record_miss t owner;
    let lines = if List.length lines >= t.nways then List.filteri (fun i _ -> i < t.nways - 1) lines else lines in
    t.sets_arr.(set) <- { owner; tag } :: lines;
    true
  end

let fill_set t ~owner ~set =
  for tag = 0 to t.nways - 1 do
    ignore (access t ~owner ~set ~tag : bool)
  done

let probe t ~owner ~sets =
  List.fold_left
    (fun acc set ->
      let misses = ref 0 in
      for tag = 0 to t.nways - 1 do
        if access t ~owner ~set ~tag then incr misses
      done;
      acc + !misses)
    0 sets

let misses t ~owner = Option.value ~default:0 (Hashtbl.find_opt t.totals owner)

let miss_windows t ~owner ~since =
  let now = Sim.Engine.now t.engine in
  let first = since / t.window in
  let last = now / t.window in
  let n = max 0 (last - first + 1) in
  match Hashtbl.find_opt t.miss_bins owner with
  | None -> Array.make n 0
  | Some bins -> Array.init n (fun i -> Option.value ~default:0 (Hashtbl.find_opt bins (first + i)))

let forget_owner t owner =
  Hashtbl.remove t.miss_bins owner;
  Hashtbl.remove t.totals owner;
  Array.iteri
    (fun i lines -> t.sets_arr.(i) <- List.filter (fun l -> not (String.equal l.owner owner)) lines)
    t.sets_arr
