lib/monitors/monitor_kernel.mli: Hypervisor Measurement Sim Vmm_profile
