lib/hypervisor/cache.mli: Sim
