(* Batched-attestation frontier: served throughput and tail latency versus
   Merkle batch size, across offered rate and AS shard count (cache off, so
   the amortization win is not confounded with verdict caching).

   The batch-1 column uses the exact pre-batching driver configuration
   (batch_max = 1 disables every piece of batch machinery), so its rows
   reproduce the unbatched BENCH_fleet numbers for matching configs. *)

type row = { batch : int; rate : float; as_count : int; r : Fleet.Driver.result }

type result = { seed : int; scale : string; rows : row list }

type sweep = {
  batches : int list;
  rates : float list;
  as_counts : int list;
  base : Fleet.Driver.config;
}

let default_sweep ~seed =
  {
    batches = [ 1; 4; 8; 16; 32 ];
    (* 32 req/s is ~3.4x what one capacity-1 shard serves cold (~9.4 req/s
       since the CRT recalibration), deep enough into saturation for the
       frontier to show the amortization ceiling. *)
    rates = [ 8.0; 16.0; 32.0 ];
    as_counts = [ 1; 2 ];
    base = { Fleet.Driver.default_config with seed };
  }

let smoke_sweep ~seed =
  {
    batches = [ 1; 8 ];
    (* Twice the ~9.4 req/s cold capacity of the single smoke shard, so the
       unbatched column sheds and batch-8's amortization shows. *)
    rates = [ 24.0 ];
    as_counts = [ 1 ];
    base =
      {
        Fleet.Driver.default_config with
        seed;
        servers = 40;
        vms = 200;
        duration = Sim.Time.sec 10;
        drain = Sim.Time.sec 10;
        hot_vms = 32;
      };
  }

let scale_of_env () =
  match Sys.getenv_opt "CLOUDMONATT_FLEET_SCALE" with
  | Some "smoke" -> `Smoke
  | _ -> `Default

(* A full batch must be able to form in the queue, so depth grows with the
   batch bound; batch 1 keeps the baseline depth exactly. *)
let config_for sweep ~batch ~rate ~as_count =
  {
    sweep.base with
    Fleet.Driver.rate_per_s = rate;
    as_count;
    queue_depth = max sweep.base.Fleet.Driver.queue_depth (2 * batch);
    batch_max = batch;
    batch_window = (if batch <= 1 then 0 else Sim.Time.ms 100);
  }

let run ?(seed = 2015) ?scale () =
  let scale = match scale with Some s -> s | None -> scale_of_env () in
  let sweep, scale_name =
    match scale with
    | `Default -> (default_sweep ~seed, "default")
    | `Smoke -> (smoke_sweep ~seed, "smoke")
  in
  let rows =
    List.concat_map
      (fun batch ->
        List.concat_map
          (fun rate ->
            List.map
              (fun as_count ->
                let config = config_for sweep ~batch ~rate ~as_count in
                { batch; rate; as_count; r = Fleet.Driver.run config })
              sweep.as_counts)
          sweep.rates)
      sweep.batches
  in
  { seed; scale = scale_name; rows }

let top_rate rows = List.fold_left (fun acc r -> Float.max acc r.rate) 0.0 rows

(* Served throughput at the highest offered rate on one shard, per batch
   size — the acceptance criterion's number. *)
let scaling_at_top rows =
  let top = top_rate rows in
  List.filter (fun r -> r.rate = top && r.as_count = 1) rows
  |> List.sort (fun a b -> compare a.batch b.batch)

let print { seed; scale; rows } =
  Common.section
    (Printf.sprintf "Batch: Merkle-aggregated attestation (seed %d, %s sweep)" seed scale);
  Printf.printf
    "cost model: cold attestation %.0f ms; batched rounds amortize the quote —\n"
    Fleet.Driver.cold_attest_ms;
  List.iter
    (fun b ->
      if b > 1 then
        Printf.printf "  batch %2d: %6.0f ms/round = %5.1f ms/report end-to-end\n" b
          (Fleet.Driver.batch_attest_ms b)
          (Fleet.Driver.batch_attest_ms b /. float_of_int b))
    (List.sort_uniq compare (List.map (fun r -> r.batch) rows));
  Printf.printf "\n%5s %5s %3s | %7s %7s %7s | %7s %7s %7s | %6s %6s %5s\n" "batch" "rate"
    "AS" "off/s" "srv/s" "shed" "p50ms" "p95ms" "p99ms" "rounds" "meanB" "maxQ";
  List.iter
    (fun { batch; rate; as_count; r } ->
      Printf.printf
        "%5d %5.1f %3d | %7.2f %7.2f %7d | %7.0f %7.0f %7.0f | %6d %6.1f %5d\n" batch rate
        as_count r.Fleet.Driver.offered_rps r.Fleet.Driver.served_rps
        (r.Fleet.Driver.shed_customer + r.Fleet.Driver.shed_periodic
       + r.Fleet.Driver.shed_recheck)
        r.Fleet.Driver.p50_ms r.Fleet.Driver.p95_ms r.Fleet.Driver.p99_ms
        r.Fleet.Driver.batches r.Fleet.Driver.mean_batch_size
        r.Fleet.Driver.max_queue_depth)
    rows;
  match scaling_at_top rows with
  | [] -> ()
  | ({ r = base; _ } :: _ as scaling) ->
      Printf.printf "\nAmortization at %.0f req/s offered (1 shard, cache off):\n"
        (top_rate rows);
      List.iter
        (fun { batch; r; _ } ->
          let speedup =
            if base.Fleet.Driver.served_rps > 0.0 then
              r.Fleet.Driver.served_rps /. base.Fleet.Driver.served_rps
            else 0.0
          in
          Printf.printf "  batch %2d: %6.2f served/s (%4.1fx)  %s\n" batch
            r.Fleet.Driver.served_rps speedup
            (Common.bar r.Fleet.Driver.served_rps))
        scaling

let row_to_json { batch; rate; as_count; r } =
  let cfg = r.Fleet.Driver.config in
  Json.Obj
    ([
      ("batch_max", Json.Int batch);
      ("batch_window_ms", Json.Float (Sim.Time.to_ms cfg.Fleet.Driver.batch_window));
      ("queue_depth", Json.Int cfg.Fleet.Driver.queue_depth);
      ("rate_per_s", Json.Float rate);
      ("as_count", Json.Int as_count);
      ("offered", Json.Int r.Fleet.Driver.offered);
      ("served", Json.Int r.Fleet.Driver.served);
      ("offered_rps", Json.Float r.Fleet.Driver.offered_rps);
      ("served_rps", Json.Float r.Fleet.Driver.served_rps);
      ("mean_ms", Json.Float r.Fleet.Driver.mean_ms);
      ("p50_ms", Json.Float r.Fleet.Driver.p50_ms);
      ("p95_ms", Json.Float r.Fleet.Driver.p95_ms);
      ("p99_ms", Json.Float r.Fleet.Driver.p99_ms);
      ( "shed",
        Json.Obj
          [
            ("customer", Json.Int r.Fleet.Driver.shed_customer);
            ("periodic", Json.Int r.Fleet.Driver.shed_periodic);
            ("recheck", Json.Int r.Fleet.Driver.shed_recheck);
            ( "total",
              Json.Int
                (r.Fleet.Driver.shed_customer + r.Fleet.Driver.shed_periodic
               + r.Fleet.Driver.shed_recheck) );
          ] );
      ("coalesced", Json.Int r.Fleet.Driver.coalesced);
      ("measurements", Json.Int r.Fleet.Driver.measurements);
      ("batch_rounds", Json.Int r.Fleet.Driver.batches);
      ("mean_batch_size", Json.Float r.Fleet.Driver.mean_batch_size);
      ("max_queue_depth", Json.Int r.Fleet.Driver.max_queue_depth);
      ("mean_queue_depth", Json.Float r.Fleet.Driver.mean_queue_depth);
     ]
    @ Fleet_exp.audit_fields r)

let to_json { seed; scale; rows } =
  let batches = List.sort_uniq compare (List.map (fun r -> r.batch) rows) in
  let speedups =
    match scaling_at_top rows with
    | [] -> []
    | { r = base; _ } :: _ as scaling ->
        List.map
          (fun { batch; r; _ } ->
            ( string_of_int batch,
              Json.Float
                (if base.Fleet.Driver.served_rps > 0.0 then
                   r.Fleet.Driver.served_rps /. base.Fleet.Driver.served_rps
                 else 0.0) ))
          scaling
  in
  Json.Obj
    [
      ("experiment", Json.Str "batch");
      ("seed", Json.Int seed);
      ("scale", Json.Str scale);
      ( "model",
        Json.Obj
          [
            ("cold_attest_ms", Json.Float Fleet.Driver.cold_attest_ms);
            ( "batch_attest_ms",
              Json.Obj
                (List.map
                   (fun b ->
                     (string_of_int b, Json.Float (Fleet.Driver.batch_attest_ms b)))
                   batches) );
          ] );
      ("served_rps_speedup_at_top_rate", Json.Obj speedups);
      ("rows", Json.List (List.map row_to_json rows));
    ]
