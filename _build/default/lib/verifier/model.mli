(** Symbolic model of the CloudMonatt attestation protocol (Figure 3).

    Four principals: customer, Cloud Controller, Attestation Server, Cloud
    Server.  Two complete sessions are traced (so replay across sessions
    can be analysed), and the full network traffic becomes attacker
    knowledge, together with all public keys and the attacker's own keys.

    [variant] switches protections off one at a time, producing the
    deliberately broken protocols the property checks must catch. *)

type variant = {
  encrypt : bool;  (** wrap messages in the SSL session keys Kx/Ky/Kz *)
  sign_measurements : bool;  (** Cloud Server signs [Vid,rM,M,N3,Q3] with ASKs *)
  sign_report : bool;  (** AS/Controller sign the report with SKa/SKc *)
  bind_nonces : bool;  (** include N1/N2/N3 inside the signed payloads *)
  leak_channel_keys : bool;  (** threat variation: SSL termination points are
                                 compromised, so Kx/Ky/Kz leak; the signature
                                 chain must stand alone *)
}

val secure : variant
(** The protocol as the paper defines it. *)

val no_encryption : variant
val no_measurement_signature : variant
val no_report_signature : variant
val no_nonces : variant
val compromised_channels : variant
(** [secure] with [leak_channel_keys]: stresses the attestation signatures
    without the SSL layer. *)

(** Per-session fresh values. *)
type session = {
  idx : int;
  n1 : Term.t;
  n2 : Term.t;
  n3 : Term.t;
  property : Term.t;  (** P *)
  requests : Term.t;  (** rM *)
  measurements : Term.t;  (** M *)
  report : Term.t;  (** R *)
  asks : Term.t;  (** session attestation secret key *)
}

type t = {
  variant : variant;
  (* long-term keys *)
  skcust : Term.t;
  skc : Term.t;
  ska : Term.t;
  sks : Term.t;
  kx : Term.t;
  ky : Term.t;
  kz : Term.t;
  vid : Term.t;
  server_id : Term.t;
  sessions : session list;  (** two sessions *)
  knowledge : Deduction.t;  (** saturated attacker knowledge *)
}

val build : variant -> t

(** {2 Message constructors}

    Exposed so the property checks can express "the exact term a verifier
    accepts" and test whether the attacker can derive a variant of it. *)

val msg_customer_request : t -> session -> Term.t
val msg_controller_to_as : t -> session -> Term.t
val msg_as_to_server : t -> session -> Term.t

val msg_server_response : t -> session -> measurements:Term.t -> key:Term.t -> Term.t
(** The response the AS's acceptance check matches in the given session,
    with arbitrary measurement payload and signing key. *)

val msg_as_report : t -> session -> report:Term.t -> key:Term.t -> Term.t
val msg_controller_report : t -> session -> report:Term.t -> key:Term.t -> Term.t

val endorsement : t -> key:Term.t -> Term.t
(** [[pub key]SKs] — what the privacy CA checks before certifying. *)
