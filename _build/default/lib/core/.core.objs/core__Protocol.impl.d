lib/core/protocol.ml: Crypto Format Privacy_ca Property Report Result String Wire
