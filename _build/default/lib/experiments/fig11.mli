(** Figure 11: attestation and response reaction times.

    For each VM flavor and each remediation strategy (termination,
    suspension, migration), measures the attestation time (detecting the
    problem) and the response time (fixing it).  Paper shape: termination
    fastest, migration slowest and growing with VM memory. *)

type row = {
  strategy : string;
  flavor : string;
  attestation_ms : float;
  response_ms : float;
}

type result = row list

val run : ?seed:int -> unit -> result
val print : result -> unit
