(** Cloud Controller — the modified OpenStack Nova of paper section 6.1.

    Owns the nova database, the image store (glance), the hypervisor fleet,
    and the customer-facing API (Table 1 commands over a secure channel).
    Its [nova attest_service] forwards attestation requests to the
    Attestation Server, verifies the signed AS report, re-signs it with the
    controller key SKc, and hands it back to the customer.  Its
    [nova response] module executes the three remediation strategies of
    paper section 5.2 when attestation results turn bad. *)

type t

type response_strategy = Terminate_vm | Suspend_vm | Migrate_vm

val strategy_label : response_strategy -> string

type response_record = {
  at : Sim.Time.t;
  vid : string;
  strategy : response_strategy;
  reaction : Sim.Time.t;  (** simulated time the response took *)
  detail : string;
}

type launch_error =
  [ `No_qualified_server
  | `Insufficient_memory
  | `Rejected of Report.t  (** startup attestation failed definitively *)
  | `Attestation_failed of string ]

val create :
  net:Net.Network.t ->
  engine:Sim.Engine.t ->
  ca:Net.Ca.t ->
  seed:string ->
  ?key_bits:int ->
  ?name:string ->
  attestation_servers:(string * Crypto.Rsa.public) list ->
  ?cluster_of:(string -> int) ->
  unit ->
  t
(** [name] defaults to ["cloud-controller"].  Registers its customer API
    handler on the network under [name].  [attestation_servers] lists the
    (network name, VKa) of each cluster's Attestation Server (paper 3.2.3:
    several AS instances give scalability); [cluster_of] maps a cloud
    server name to its AS index (default: everything on AS 0). *)

val set_cluster_map : t -> (string -> int) -> unit

val name : t -> string
val identity : t -> Net.Secure_channel.Identity.t
val public_key : t -> Crypto.Rsa.public
val db : t -> Database.t
val engine : t -> Sim.Engine.t

(** {2 Fleet, images and workloads} *)

val register_hypervisor : t -> Hypervisor.Server.t -> unit
val hypervisor : t -> string -> Hypervisor.Server.t option
val add_image : t -> Hypervisor.Image.t -> unit
val find_image : t -> string -> Hypervisor.Image.t option

val corrupt_image : t -> string -> bool
(** Attack hook: replace the stored image with a tampered copy. *)

val register_workload :
  t -> string -> (Hypervisor.Flavor.t -> unit -> Hypervisor.Program.t list) -> unit
(** Workload factories the launch command can reference by name
    (simulation stand-in for the customer's actual image payload). *)

(** {2 VM lifecycle} *)

type launch_request = {
  owner : string;
  image : string;
  flavor : string;
  properties : Property.t list;
  workload : string;  (** "" = idle *)
  pins : int option list;  (** per-vCPU pCPU pinning, for experiments *)
}

val launch : t -> launch_request -> (Commands.launch_info, launch_error) result
(** The five-stage launch of section 7.1.1, including startup attestation
    when security properties were requested.  A compromised platform makes
    the scheduler pick another server (section 5.1); a compromised image
    rejects the launch. *)

val terminate : t -> vid:string -> bool

(** {2 Attestation service} *)

val attest :
  t -> Protocol.attest_request -> (Protocol.controller_report, string) result * Ledger.t
(** One-time attestation: forwards to the AS with a fresh N2, verifies the
    AS signature and quote Q2, then signs the controller report (quote Q1
    over the customer's nonce N1).

    The AS leg rides the retry/resync stack ({!Net.Network.call_with_retry},
    {!Net.Secure_channel.Client.call_robust}); if the AS stays unreachable
    through the configured number of rounds the call still returns [Ok] of a
    signed controller report whose status is [Report.Unknown reason], so a
    lossy network degrades the verdict instead of wedging the caller.
    Forgery-shaped failures (bad signatures, malformed replies, unknown
    hosts) remain hard [Error]s. *)

val cluster_count : t -> int
(** Number of configured AS clusters (length of [attestation_servers]). *)

val cluster_of_host : t -> host:string -> int
(** The AS cluster index a cloud server is routed to (clamped to the
    configured range, like the internal routing). *)

val attest_routed :
  t ->
  cluster:int ->
  Protocol.attest_request ->
  (Protocol.controller_report, string) result * Ledger.t
(** {!attest} on behalf of a protocol term's delegation node: the caller
    claims the VM belongs to AS cluster [cluster], and the claim is checked
    against the topology before any wire traffic.  A misroute is a hard
    error; a correct route takes the exact {!attest} path (byte-identical
    wire traffic). *)

val set_attest_attempts : t -> int -> unit
(** Bound on from-scratch {!attest} rounds before degrading to [Unknown]
    (clamped to at least 1; default 2). *)

val attest_many :
  t ->
  Protocol.attest_request list ->
  (Protocol.attest_request * (Protocol.controller_report, string) result) list * Ledger.t
(** Attest many (vid, property) pairs in one call, results in request
    order with a shared cost ledger.

    With {!set_batching} off (the default) this is exactly {!attest} in a
    loop.  With it on, cache misses are grouped by host and each group of
    two or more rides a single Merkle-batched AS round — one Trust-Module
    session key and one root signature cover the whole group, while every
    report still arrives individually signed and individually verified, so
    one tampered report fails alone.  Cache hits, unplaced VMs and lone
    requests always take the unbatched path. *)

val set_batching : t -> bool -> unit
(** Enable Merkle-batched AS rounds in {!attest_many} (off by default,
    opt-in like the verdict cache).  Never affects {!attest}. *)

val batching : t -> bool

val set_auditing : t -> bool -> unit
(** Require and verify a transparency-log inclusion receipt on every AS
    report before accepting the verdict (off by default, opt-in like
    batching and the verdict cache).  The AS side must have
    {!Attestation_server.enable_audit} on; a missing or forged receipt is a
    {e hard} error that never degrades to a signed [Unknown] — it is the
    attack signal the audit layer exists to surface. *)

val auditing : t -> bool

val set_auditor : t -> Audit.Auditor.t option -> unit
(** Feed the STH from every verified receipt to this auditor
    ({!Audit.Auditor.note}), so the controller participates in split-view
    gossip alongside external auditors. *)

val auditor : t -> Audit.Auditor.t option

val verdict_cache : t -> Verdict_cache.t
(** The controller's verdict cache (disabled by default). *)

val set_verdict_cache_ttl : t -> Sim.Time.t -> unit
(** Enable verdict caching with the given TTL (0 disables).  While enabled,
    {!attest} answers from a fresh cached healthy verdict — re-signed under
    the caller's nonce — charging only controller-local ledger costs; cold
    results populate the cache ([Healthy] only), and lifecycle transitions
    (terminate, suspend, resume, migrate, image corruption) as well as
    unhealthy or [Unknown] observations invalidate it. *)

val subscribe : t -> owner:string -> (Protocol.controller_report -> unit) -> unit
(** Where periodic attestation results for this customer's VMs are
    delivered (the push channel back to the customer). *)

val periodic_start :
  t -> vid:string -> property:Property.t -> schedule:Schedule.t -> nonce:string -> bool
val periodic_stop : t -> vid:string -> property:Property.t -> bool
val periodic_active : t -> int

(** {2 Responses} *)

val set_response_policy : t -> (Report.t -> response_strategy option) -> unit
(** Decide the remediation for a failed attestation; the default policy
    terminates on runtime-integrity compromise and migrates on
    covert-channel or availability compromise. *)

val respond : t -> response_strategy -> vid:string -> (Sim.Time.t, string) result
(** Execute a response; returns the simulated reaction time (Figure 11). *)

val resume : t -> vid:string -> (Sim.Time.t, string) result
(** Resume a suspended VM after the platform re-attests healthy. *)

val set_auto_resume : t -> ?recheck_period:Sim.Time.t -> ?max_rechecks:int -> bool -> unit
(** Section 5.2 response #2 behaviour: when a periodic attestation triggers
    suspension, keep re-attesting the VM every [recheck_period]; resume it
    if health returns, terminate it after [max_rechecks] failures.  On by
    default (5 s, 10 checks). *)

val responses : t -> response_record list
(** Responses executed so far, oldest first. *)

(** {2 Introspection (operator-side, not exposed to customers)} *)

val vm_host : t -> vid:string -> string option
val vm_state : t -> vid:string -> Database.vm_state option
val events : t -> string list
(** Human-readable event log, oldest first. *)
