lib/core/lifecycle.mli: Hypervisor Net Sim
