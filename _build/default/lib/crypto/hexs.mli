(** Hexadecimal encoding of byte strings. *)

val encode : string -> string
(** Lower-case hex of each byte. *)

val decode : string -> string
(** Inverse of {!encode}.
    @raise Invalid_argument on odd length or non-hex characters. *)

val pp : Format.formatter -> string -> unit
(** Print a byte string as hex. *)

val short : string -> string
(** First 8 hex digits, for log-friendly digests. *)
