(* Host wall-clock micro-benchmark of the RSA hot path: sign throughput at
   512/1024/2048 bits across the four (CRT, window) combinations, verify
   throughput, and the verification memo's hit/miss cost.  Unlike the
   simulated experiments this measures real CPU time — it is the artifact
   (BENCH_crypto.json) that backs the calibrated {!Core.Costs} constants,
   and the CI smoke step asserts its headline ratio (CRT must beat the
   classic full-width path) so an accidental regression to the slow path
   fails loudly. *)

type sign_row = {
  bits : int;
  crt : bool;
  window : bool;
  ops_per_s : float;
  ms_per_op : float;
  iters : int;
}

type verify_row = { v_bits : int; v_ops_per_s : float; v_ms_per_op : float; v_iters : int }

type memo_rates = {
  m_bits : int;
  hit_ops_per_s : float;
  miss_ops_per_s : float;
  hit_speedup : float;
}

(* Steady-state pop+push churn on the simulation kernel's binary heap —
   the engine's hottest non-crypto loop once the fleet driver schedules
   millions of events.  Tracked here so the bottom-up extraction path
   shows up in the same committed artifact as the RSA hot path. *)
type heap_row = {
  h_size : int;
  h_ops_per_s : float;
  h_ns_per_op : float;
  h_iters : int;
}

type result = {
  scale : string;
  key_bits : int list;
  sign : sign_row list;
  verify : verify_row list;
  memo : memo_rates;
  heap : heap_row list;
  (* speedup of (crt, window) over the classic full-width bit-at-a-time
     path, per key size — the calibration ratios. *)
  sign_speedup : (int * float) list;
  (* speedup of (crt, window) over the recorded seed implementation. *)
  seed_speedup : (int * float) list;
  crt_speedup_1024 : float;
}

let message = "crypto-bench attestation quote payload"

(* Sign throughput of the pre-CRT/pre-window implementation (full-width
   bit-at-a-time Montgomery ladder with per-step allocations), measured on
   the reference host with this same time-budget harness against the seed
   tree before the hot-path rewrite.  Recorded here so the committed
   artifact carries the before/after trajectory; the vs-seed ratios it
   yields are exact on the reference host and approximate elsewhere (both
   paths scale with the same limb arithmetic, so the ratio travels well). *)
let seed_sign_ops_per_s = [ (512, 765.4); (1024, 103.7); (2048, 15.8) ]

(* Repeat [f] until the budget elapses (always at least [min_iters] times)
   and return (seconds per op, iterations). *)
let time_per_op ~budget ~min_iters f =
  ignore (f ());
  (* warm-up: first call pays any lazy setup *)
  let t0 = Unix.gettimeofday () in
  let iters = ref 0 in
  while
    let el = Unix.gettimeofday () -. t0 in
    el < budget || !iters < min_iters
  do
    ignore (f ());
    incr iters
  done;
  let el = Unix.gettimeofday () -. t0 in
  (el /. float_of_int (max 1 !iters), !iters)

let scale_of_env () =
  match Sys.getenv_opt "CLOUDMONATT_CRYPTO_SCALE" with
  | Some "smoke" -> ("smoke", 0.02, 2)
  | _ -> ("full", 0.25, 5)

let run ~seed () =
  let scale, budget, min_iters = scale_of_env () in
  let key_bits = [ 512; 1024; 2048 ] in
  let keys =
    List.map
      (fun bits ->
        let drbg = Crypto.Drbg.create ~seed:(Printf.sprintf "crypto-bench|%d|%d" seed bits) in
        (bits, Crypto.Rsa.generate drbg ~bits))
      key_bits
  in
  let sign =
    List.concat_map
      (fun (bits, (kp : Crypto.Rsa.keypair)) ->
        List.map
          (fun (crt, window) ->
            let s_per_op, iters =
              time_per_op ~budget ~min_iters (fun () ->
                  Crypto.Rsa.sign ~crt ~window kp.secret message)
            in
            { bits; crt; window; ops_per_s = 1.0 /. s_per_op; ms_per_op = 1000.0 *. s_per_op; iters })
          [ (false, false); (false, true); (true, false); (true, true) ])
      keys
  in
  let verify =
    List.map
      (fun (bits, (kp : Crypto.Rsa.keypair)) ->
        let signature = Crypto.Rsa.sign kp.secret message in
        let s_per_op, iters =
          time_per_op ~budget ~min_iters (fun () ->
              Crypto.Rsa.verify kp.public ~signature message)
        in
        { v_bits = bits; v_ops_per_s = 1.0 /. s_per_op; v_ms_per_op = 1000.0 *. s_per_op; v_iters = iters })
      keys
  in
  let memo =
    let bits = 1024 in
    let kp = List.assoc bits keys in
    let signature = Crypto.Rsa.sign kp.secret message in
    let memo = Crypto.Rsa.Memo.create ~capacity:64 in
    ignore (Crypto.Rsa.verify_memo ~memo kp.public ~signature message);
    let hit_s, _ =
      time_per_op ~budget ~min_iters (fun () ->
          Crypto.Rsa.verify_memo ~memo kp.public ~signature message)
    in
    let miss_s, _ =
      time_per_op ~budget ~min_iters (fun () ->
          (* Clearing first forces the full lookup-miss + verify + insert
             path on every iteration. *)
          Crypto.Rsa.Memo.clear memo;
          Crypto.Rsa.verify_memo ~memo kp.public ~signature message)
    in
    {
      m_bits = bits;
      hit_ops_per_s = 1.0 /. hit_s;
      miss_ops_per_s = 1.0 /. miss_s;
      hit_speedup = miss_s /. hit_s;
    }
  in
  let heap =
    List.map
      (fun size ->
        let prng = Sim.Prng.create (seed + size) in
        let h = Sim.Heap.create ~cmp:compare in
        for _ = 1 to size do
          Sim.Heap.push h (Sim.Prng.int prng 1_000_000)
        done;
        (* One op = pop-min + push-random at steady size: the exact churn the
           event loop performs per scheduled event. *)
        let s_per_op, iters =
          time_per_op ~budget ~min_iters:(min_iters * 1000) (fun () ->
              ignore (Sim.Heap.pop h : int option);
              Sim.Heap.push h (Sim.Prng.int prng 1_000_000))
        in
        {
          h_size = size;
          h_ops_per_s = 1.0 /. s_per_op;
          h_ns_per_op = 1e9 *. s_per_op;
          h_iters = iters;
        })
      [ 1024; 65536 ]
  in
  let rate ~bits ~crt ~window =
    let r = List.find (fun r -> r.bits = bits && r.crt = crt && r.window = window) sign in
    r.ops_per_s
  in
  let sign_speedup =
    List.map
      (fun bits ->
        (bits, rate ~bits ~crt:true ~window:true /. rate ~bits ~crt:false ~window:false))
      key_bits
  in
  let seed_speedup =
    List.map
      (fun (bits, seed_rate) -> (bits, rate ~bits ~crt:true ~window:true /. seed_rate))
      seed_sign_ops_per_s
  in
  let crt_speedup_1024 =
    rate ~bits:1024 ~crt:true ~window:true /. rate ~bits:1024 ~crt:false ~window:true
  in
  { scale; key_bits; sign; verify; memo; heap; sign_speedup; seed_speedup; crt_speedup_1024 }

let print r =
  Common.section
    (Printf.sprintf "RSA hot path, host wall clock (scale=%s)" r.scale);
  Printf.printf "  %-6s %-5s %-6s %12s %10s\n" "bits" "crt" "window" "ops/s" "ms/op";
  List.iter
    (fun s ->
      Printf.printf "  %-6d %-5b %-6b %12.1f %10.3f\n" s.bits s.crt s.window s.ops_per_s
        s.ms_per_op)
    r.sign;
  Printf.printf "  verify:\n";
  List.iter
    (fun v -> Printf.printf "  %-6d %24.1f %10.3f\n" v.v_bits v.v_ops_per_s v.v_ms_per_op)
    r.verify;
  Printf.printf "  memo (%d bits): hit %.0f ops/s, miss %.0f ops/s (%.0fx)\n" r.memo.m_bits
    r.memo.hit_ops_per_s r.memo.miss_ops_per_s r.memo.hit_speedup;
  Printf.printf "  sim heap pop+push churn:\n";
  List.iter
    (fun h ->
      Printf.printf "  %-6d %24.0f %10.1fns\n" h.h_size h.h_ops_per_s h.h_ns_per_op)
    r.heap;
  List.iter
    (fun (bits, f) -> Printf.printf "  crt+window vs classic @%d: %.2fx\n" bits f)
    r.sign_speedup;
  List.iter
    (fun (bits, f) -> Printf.printf "  crt+window vs seed tree @%d: %.2fx\n" bits f)
    r.seed_speedup;
  Printf.printf "  crt vs non-crt (windowed) @1024: %.2fx\n" r.crt_speedup_1024

let to_json ~seed r =
  let open Json in
  Obj
    [
      ("seed", Int seed);
      ("scale", Str r.scale);
      ("key_bits", List (List.map (fun b -> Int b) r.key_bits));
      ( "sign",
        List
          (List.map
             (fun s ->
               Obj
                 [
                   ("bits", Int s.bits);
                   ("crt", Bool s.crt);
                   ("window", Bool s.window);
                   ("ops_per_s", Float s.ops_per_s);
                   ("ms_per_op", Float s.ms_per_op);
                   ("iters", Int s.iters);
                 ])
             r.sign) );
      ( "verify",
        List
          (List.map
             (fun v ->
               Obj
                 [
                   ("bits", Int v.v_bits);
                   ("ops_per_s", Float v.v_ops_per_s);
                   ("ms_per_op", Float v.v_ms_per_op);
                   ("iters", Int v.v_iters);
                 ])
             r.verify) );
      ( "memo",
        Obj
          [
            ("bits", Int r.memo.m_bits);
            ("hit_ops_per_s", Float r.memo.hit_ops_per_s);
            ("miss_ops_per_s", Float r.memo.miss_ops_per_s);
            ("hit_speedup", Float r.memo.hit_speedup);
          ] );
      ( "heap",
        List
          (List.map
             (fun h ->
               Obj
                 [
                   ("size", Int h.h_size);
                   ("ops_per_s", Float h.h_ops_per_s);
                   ("ns_per_op", Float h.h_ns_per_op);
                   ("iters", Int h.h_iters);
                 ])
             r.heap) );
      ( "seed_baseline",
        Obj
          (("note", Str "sign ops/s of the pre-CRT seed tree, reference host")
          :: List.map
               (fun (bits, rate) -> (Printf.sprintf "sign_ops_per_s_%d" bits, Float rate))
               seed_sign_ops_per_s) );
      ( "speedup",
        Obj
          (List.map
             (fun (bits, f) ->
               (Printf.sprintf "sign_crt_window_vs_classic_%d" bits, Float f))
             r.sign_speedup
          @ List.map
              (fun (bits, f) -> (Printf.sprintf "sign_crt_window_vs_seed_%d" bits, Float f))
              r.seed_speedup
          @ [ ("sign_crt_vs_noncrt_1024", Float r.crt_speedup_1024) ]) );
    ]
