(** Platform Configuration Registers.

    A bank of hash-chained registers, as in a TCG TPM.  Extending register
    [i] with measurement [m] sets it to [SHA-256(old || m)], so the final
    value commits to the whole ordered measurement sequence. *)

type t

val digest_size : int (** 32 bytes *)

val create : count:int -> t
(** All registers start as 32 zero bytes. *)

val count : t -> int

val read : t -> int -> string
(** @raise Invalid_argument on an out-of-range index. *)

val extend : t -> int -> string -> string
(** [extend t i m] extends register [i] with measurement [m] and returns the
    new value. *)

val reset : t -> int -> unit

val composite : t -> int list -> string
(** [composite t idxs] hashes the selected registers in index order — the
    value a TPM quote signs. *)

val snapshot : t -> string array

val load : t -> string array -> (unit, string) result
(** [load t values] overwrites the whole bank in place with a previously
    taken {!snapshot} — the restore half of vTPM state migration.  The bank
    object itself is preserved, so holders of the [t] observe the new
    values.  Fails (without touching the bank) when the snapshot has the
    wrong register count or a value of the wrong digest size. *)
