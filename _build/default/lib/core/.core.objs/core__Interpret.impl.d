lib/core/interpret.ml: Array Crypto Float Hypervisor List Monitors Option Printf Property Report Sim String
