(** Weighted generator of protocol phrases for {!Gen}'s [Protocol_term] op.

    Phrases are built well-typed by construction where the generator can
    see the constraint (slot/property bounds, no nested delegation, layers
    over their own slot); delegation clusters are drawn blind, so a phrase
    occasionally lands on the interpreter's typing-rejection path — which
    is a path worth fuzzing. *)

val generate : Sim.Prng.t -> slots:int -> Copland.Phrase.t
(** A strengthened (unweakened) phrase over VM slots [0, slots). *)

val weaken : Sim.Prng.t -> Copland.Phrase.t -> Copland.Phrase.t
(** Flip exactly one strengthening flag (nonce / deleg auth / layer check),
    uniformly chosen; identity on a phrase with none left. *)
