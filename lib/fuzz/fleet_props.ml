type violation = { oracle : string; seed : int; detail : string }

let pp_violation ppf v =
  Format.fprintf ppf "[%s] fleet seed %d: %s" v.oracle v.seed v.detail

(* Small configs: a fleet-property check should cost milliseconds, not the
   full benchmark's minutes, so the campaign can afford hundreds of them. *)
let random_config prng =
  {
    Fleet.Driver.seed = Sim.Prng.int prng 1_000_000;
    servers = Sim.Prng.int_in prng 8 32;
    vms = Sim.Prng.int_in prng 16 96;
    as_count = Sim.Prng.int_in prng 1 4;
    as_capacity = Sim.Prng.int_in prng 1 3;
    queue_depth = Sim.Prng.int_in prng 2 12;
    ttl = Sim.Time.ms [| 0; 100; 1000 |].(Sim.Prng.int prng 3);
    rate_per_s = float_of_int (Sim.Prng.int_in prng 20 160);
    duration = Sim.Time.ms (Sim.Prng.int_in prng 300 1200);
    drain = Sim.Time.sec 5;
    unhealthy_p = [| 0.0; 0.05; 0.2 |].(Sim.Prng.int prng 3);
    churn_period = Sim.Time.ms [| 0; 0; 400 |].(Sim.Prng.int prng 3);
    hot_vms = Sim.Prng.int_in prng 4 16;
    hot_p = 0.5;
    customer_p = 0.3;
    periodic_p = 0.5;
    batch_max = [| 1; 1; 4; 8 |].(Sim.Prng.int prng 4);
    batch_window = Sim.Time.ms (Sim.Prng.int_in prng 1 10);
    audit_checkpoint = Sim.Time.ms [| 0; 0; 200 |].(Sim.Prng.int prng 3);
    (* Half the campaign stays all-classic; the rest mixes trust backends
       across clusters (heterogeneous fleets must satisfy every oracle). *)
    backends =
      [|
        [| Tpm.Backend.Classic |];
        [| Tpm.Backend.Classic |];
        [| Tpm.Backend.Classic; Tpm.Backend.Evtpm; Tpm.Backend.Cvm_report |];
        [| Tpm.Backend.Evtpm; Tpm.Backend.Cvm_report |];
      |].(Sim.Prng.int prng 4);
    domains = 1;
    epoch = Sim.Time.ms (Sim.Prng.int_in prng 20 120);
    (* Half the campaign runs unmonitored (those configs must keep every
       mon_* counter at zero); the rest arms the re-attestation scheduler,
       sometimes with a storm, so the determinism and sharding oracles
       cover monitored runs too. *)
    monitor =
      (if Sim.Prng.int prng 2 = 0 then None
       else
         let storms =
           match Sim.Prng.int prng 4 with
           | 0 -> []
           | 1 -> [ Fleet.Monitor.Rack_compromise { at = Sim.Time.ms 200; cluster = 0 } ]
           | 2 ->
               [
                 Fleet.Monitor.Image_cve
                   { at = Sim.Time.ms 200; property = Core.Property.Runtime_integrity };
               ]
           | _ -> [ Fleet.Monitor.Migration_wave { at = Sim.Time.ms 200; count = 8 } ]
         in
         Some
           {
             Fleet.Monitor.default_config with
             tick = Sim.Time.ms (Sim.Prng.int_in prng 100 300);
             budget = Sim.Time.ms (Sim.Prng.int_in prng 800 2000);
             recheck_budget = Sim.Time.ms 400;
             lead = Sim.Time.ms 400;
             storms;
           });
  }

let check ~seed =
  let prng = Sim.Prng.create (seed lxor 0x666c6565 (* "flee" *)) in
  let config = random_config prng in
  let violations = ref [] in
  let flag oracle detail = violations := { oracle; seed; detail } :: !violations in
  let r = Fleet.Driver.run config in
  let sheds =
    r.Fleet.Driver.shed_customer + r.Fleet.Driver.shed_periodic
    + r.Fleet.Driver.shed_recheck
  in
  if
    r.Fleet.Driver.shed_customer < 0 || r.Fleet.Driver.shed_periodic < 0
    || r.Fleet.Driver.shed_recheck < 0 || r.Fleet.Driver.served < 0
  then flag "fleet-conservation" "negative counter";
  (* Monitor probes are submissions the arrival process never offered, so
     they join the left-hand side of the ledger. *)
  if r.Fleet.Driver.offered + r.Fleet.Driver.mon_scheduled <> r.Fleet.Driver.served + sheds
  then
    flag "fleet-conservation"
      (Printf.sprintf "offered %d + probes %d <> served %d + shed %d"
         r.Fleet.Driver.offered r.Fleet.Driver.mon_scheduled r.Fleet.Driver.served sheds);
  (* Determinism: the driver documents equal configs => equal results. *)
  let r2 = Fleet.Driver.run config in
  if r2 <> r then flag "fleet-determinism" "same config produced different results";
  (* Sharded determinism: running the very same scenario on two domains
     must replay the one-domain run byte for byte, trace digest included. *)
  let r_par = Fleet.Driver.run { config with Fleet.Driver.domains = 2 } in
  if
    not
      (String.equal
         (Fleet.Driver.fingerprint r_par)
         (Fleet.Driver.fingerprint r))
  then
    flag "fleet-shard-determinism"
      (Printf.sprintf "domains=2 diverged from domains=1 (as_count %d)"
         config.Fleet.Driver.as_count);
  (* Audit strictly pay-if-enabled. *)
  if config.Fleet.Driver.audit_checkpoint = 0 then begin
    if
      r.Fleet.Driver.audit_appends <> 0
      || r.Fleet.Driver.audit_checkpoints <> 0
      || r.Fleet.Driver.audit_proofs <> 0
      || r.Fleet.Driver.audit_equivocations <> 0
    then
      flag "fleet-audit-off"
        (Printf.sprintf "audit off but counters %d/%d/%d/%d" r.Fleet.Driver.audit_appends
           r.Fleet.Driver.audit_checkpoints r.Fleet.Driver.audit_proofs
           r.Fleet.Driver.audit_equivocations)
  end
  else if r.Fleet.Driver.audit_equivocations <> 0 then
    flag "fleet-audit-off"
      (Printf.sprintf "honest run convicted the operator %d time(s)"
         r.Fleet.Driver.audit_equivocations);
  (* Per-backend served attribution must cover exactly the cluster-served
     requests: everything served except controller-side cache hits. *)
  let by_backend =
    List.fold_left (fun acc (_, n) -> acc + n) 0 r.Fleet.Driver.served_by_backend
  in
  if by_backend + r.Fleet.Driver.cache_hits <> r.Fleet.Driver.served then
    flag "fleet-backend-attribution"
      (Printf.sprintf "backend-attributed %d + cache hits %d <> served %d" by_backend
         r.Fleet.Driver.cache_hits r.Fleet.Driver.served);
  (* batch_max = 1 must never execute a batched round, whatever the window. *)
  if config.Fleet.Driver.batch_max = 1 && r.Fleet.Driver.batches <> 0 then
    flag "fleet-batch1-inert"
      (Printf.sprintf "batch_max=1 ran %d batched rounds" r.Fleet.Driver.batches);
  (* Monitor strictly pay-if-enabled, and when enabled: every scheduled
     probe is accounted for exactly once, and the end-of-run entry census
     covers the fleet with no double-schedules. *)
  (match config.Fleet.Driver.monitor with
  | None ->
      if
        r.Fleet.Driver.mon_scheduled <> 0
        || r.Fleet.Driver.mon_ticks <> 0
        || r.Fleet.Driver.mon_entries <> 0
        || r.Fleet.Driver.mon_storms <> []
      then
        flag "fleet-monitor-off"
          (Printf.sprintf "monitor off but counters %d/%d/%d" r.Fleet.Driver.mon_scheduled
             r.Fleet.Driver.mon_ticks r.Fleet.Driver.mon_entries)
  | Some _ ->
      let missed =
        r.Fleet.Driver.mon_missed_periodic + r.Fleet.Driver.mon_missed_recheck
      in
      if
        r.Fleet.Driver.mon_scheduled
        <> r.Fleet.Driver.mon_served + missed + r.Fleet.Driver.mon_shed
      then
        flag "fleet-monitor-conservation"
          (Printf.sprintf "scheduled %d <> served %d + missed %d + shed %d"
             r.Fleet.Driver.mon_scheduled r.Fleet.Driver.mon_served missed
             r.Fleet.Driver.mon_shed);
      if
        r.Fleet.Driver.mon_entries <> config.Fleet.Driver.vms
        || r.Fleet.Driver.mon_entry_dups <> 0
      then
        flag "fleet-monitor-census"
          (Printf.sprintf "%d entries over %d VMs, %d double-schedule(s)"
             r.Fleet.Driver.mon_entries config.Fleet.Driver.vms
             r.Fleet.Driver.mon_entry_dups));
  List.rev !violations

let campaign ~seed0 ~runs =
  List.concat (List.init runs (fun i -> check ~seed:(seed0 + i)))
