let platform_measurement server =
  match Hypervisor.Server.trust_backend server with
  | None -> None
  | Some tm -> Some (Tpm.Pcr.composite (Tpm.Backend.pcrs tm) [ 0; 1 ])

let image_measurement server ~vid =
  match Hypervisor.Server.find server vid with
  | None -> None
  | Some inst -> Some inst.image_hash_at_launch

let measure_image_for_launch image = Hypervisor.Image.hash image
