(** Attestation Client — the host-VM daemon on each secure cloud server
    (the "oat client" + Monitor Kernel + Trust Module glue of Figure 2).

    Registered on the network at ["att:<server-name>"], behind a secure
    channel authenticated with the server's identity key.  For each
    measurement request it: generates a fresh session attestation keypair
    in the Trust Module, collects the requested measurements through the
    Monitor Kernel (loading the Trust Evidence Registers), computes the
    quote Q3, signs the payload with the session key, and returns the
    response together with the endorsement the privacy CA needs. *)

type t

val create :
  net:Net.Network.t ->
  ca:Net.Ca.t ->
  seed:string ->
  ?key_bits:int ->
  Hypervisor.Server.t ->
  (t, [ `Not_secure ]) result
(** Fails on servers without a Trust Module.  Registers the network
    handler as a side effect. *)

val address : t -> string
val server : t -> Hypervisor.Server.t
val kernel : t -> Monitors.Monitor_kernel.t
val identity : t -> Net.Secure_channel.Identity.t

val address_of : string -> string
(** [address_of server_name] is the network address of that server's
    attestation client. *)

val measurement_cost : ?backend:Tpm.Backend.kind -> Protocol.measure_request -> Sim.Time.t
(** Simulated server-side cost of serving a request: session key
    generation, per-measurement collection, quote signing.  [backend]
    (default [Classic]) selects the per-backend keygen/sign terms. *)

val batch_measurement_cost :
  ?backend:Tpm.Backend.kind -> Protocol.batch_measure_request -> Sim.Time.t
(** Simulated cost of a batched round: one session keygen + one root
    signature for the whole batch ({!Core.Costs.batch_quote_cost}), plus
    per-measurement collection.  The client answers batch requests on the
    same channel as single ones, distinguished by the wire magic. *)

val requests_served : t -> int
