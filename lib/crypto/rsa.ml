type public = { n : Bignum.t; e : Bignum.t; bits : int }

type crt = { p : Bignum.t; q : Bignum.t; dp : Bignum.t; dq : Bignum.t; qinv : Bignum.t }

type secret = { pub : public; d : Bignum.t; crt : crt option }
type keypair = { public : public; secret : secret }

let e65537 = Bignum.of_int 65537

let generate drbg ~bits =
  if bits < 128 then invalid_arg "Rsa.generate: modulus must be at least 128 bits";
  let half = bits / 2 in
  let rec gen_suitable_prime () =
    let p = Bignum.generate_prime drbg ~bits:half in
    let p1 = Bignum.sub p Bignum.one in
    if Bignum.equal (Bignum.gcd p1 e65537) Bignum.one then p else gen_suitable_prime ()
  in
  (* On an unsuitable pair (n too short, q = p, or no inverse) only q is
     regenerated: p already passed primality and gcd screening, and prime
     generation is the expensive step, so discarding it roughly doubled
     the worst-case retry cost for nothing. *)
  let p = gen_suitable_prime () in
  let rec go_q () =
    let q = gen_suitable_prime () in
    if Bignum.equal p q then go_q ()
    else begin
      let n = Bignum.mul p q in
      if Bignum.bit_length n <> bits then go_q ()
      else begin
        let p1 = Bignum.sub p Bignum.one and q1 = Bignum.sub q Bignum.one in
        let phi = Bignum.mul p1 q1 in
        match (Bignum.mod_inverse e65537 phi, Bignum.mod_inverse q p) with
        | Some d, Some qinv ->
            let pub = { n; e = e65537; bits } in
            let crt =
              Some { p; q; dp = Bignum.rem d p1; dq = Bignum.rem d q1; qinv }
            in
            { public = pub; secret = { pub; d; crt } }
        | _ -> go_q ()
      end
    end
  in
  go_q ()

(* m^d mod n via the CRT when the prime factorization is on hand: two
   half-width exponentiations (each ~4x cheaper than one full-width one in
   this quadratic-mult bignum) recombined by Garner's formula.  Secrets
   built without factors — e.g. reconstituted from a stored (n, d) pair —
   take the classic full-width path; both produce the identical value
   m^d mod n, so signature and plaintext bytes do not depend on which
   path ran. *)
let private_pow ?(crt = true) ?(window = true) secret base =
  (* RSA moduli and their prime factors are odd, so the Montgomery path is
     always applicable and the window toggle can reach it directly. *)
  match if crt then secret.crt else None with
  | None -> Bignum.mod_pow_mont ~window ~base ~exp:secret.d ~modulus:secret.pub.n
  | Some c ->
      let m1 = Bignum.mod_pow_mont ~window ~base:(Bignum.rem base c.p) ~exp:c.dp ~modulus:c.p in
      let m2 = Bignum.mod_pow_mont ~window ~base:(Bignum.rem base c.q) ~exp:c.dq ~modulus:c.q in
      (* h = qinv * (m1 - m2) mod p, then m = m2 + q*h. *)
      let m2p = Bignum.rem m2 c.p in
      let diff =
        if Bignum.compare m1 m2p >= 0 then Bignum.sub m1 m2p
        else Bignum.sub (Bignum.add m1 c.p) m2p
      in
      let h = Bignum.rem (Bignum.mul c.qinv diff) c.p in
      Bignum.add m2 (Bignum.mul c.q h)

let modulus_bytes pub = (pub.bits + 7) / 8

(* EMSA-PKCS1-v1.5 style: 00 01 FF..FF 00 <label> <sha256(msg)> *)
let digest_label = "sha256:"

let emsa_encode pub msg =
  let k = modulus_bytes pub in
  let h = Sha256.digest msg in
  let payload = digest_label ^ h in
  let pad_len = k - 3 - String.length payload in
  if pad_len < 8 then invalid_arg "Rsa: modulus too small for signature padding";
  let b = Buffer.create k in
  Buffer.add_char b '\x00';
  Buffer.add_char b '\x01';
  Buffer.add_string b (String.make pad_len '\xff');
  Buffer.add_char b '\x00';
  Buffer.add_string b payload;
  Buffer.contents b

let sign ?crt ?window secret msg =
  let em = Bignum.of_bytes_be (emsa_encode secret.pub msg) in
  let s = private_pow ?crt ?window secret em in
  Bignum.to_bytes_be ~width:(modulus_bytes secret.pub) s

let verify pub ~signature msg =
  String.length signature = modulus_bytes pub
  &&
  let s = Bignum.of_bytes_be signature in
  Bignum.compare s pub.n < 0
  &&
  let em = Bignum.mod_pow ~base:s ~exp:pub.e ~modulus:pub.n in
  String.equal (Bignum.to_bytes_be ~width:(modulus_bytes pub) em) (emsa_encode pub msg)

let max_plaintext pub = modulus_bytes pub - 11

let encrypt drbg pub msg =
  let k = modulus_bytes pub in
  if String.length msg > max_plaintext pub then
    invalid_arg "Rsa.encrypt: message too long for modulus";
  let pad_len = k - 3 - String.length msg in
  let pad = Bytes.of_string (Drbg.random_bytes drbg pad_len) in
  for i = 0 to pad_len - 1 do
    (* Padding bytes must be non-zero so the 00 separator is unambiguous. *)
    if Bytes.get pad i = '\x00' then Bytes.set pad i '\x01'
  done;
  let b = Buffer.create k in
  Buffer.add_char b '\x00';
  Buffer.add_char b '\x02';
  Buffer.add_bytes b pad;
  Buffer.add_char b '\x00';
  Buffer.add_string b msg;
  let m = Bignum.of_bytes_be (Buffer.contents b) in
  Bignum.to_bytes_be ~width:k (Bignum.mod_pow ~base:m ~exp:pub.e ~modulus:pub.n)

let decrypt secret cipher =
  let k = modulus_bytes secret.pub in
  if String.length cipher <> k then None
  else begin
    let c = Bignum.of_bytes_be cipher in
    if Bignum.compare c secret.pub.n >= 0 then None
    else begin
      let em = Bignum.to_bytes_be ~width:k (private_pow secret c) in
      if String.length em < 11 || em.[0] <> '\x00' || em.[1] <> '\x02' then None
      else begin
        match String.index_from_opt em 2 '\x00' with
        | None -> None
        | Some sep when sep < 10 -> None
        | Some sep -> Some (String.sub em (sep + 1) (String.length em - sep - 1))
      end
    end
  end

let public_to_string pub =
  Printf.sprintf "rsa-pub:%d:%s:%s" pub.bits (Bignum.to_hex pub.n) (Bignum.to_hex pub.e)

let public_of_string s =
  match String.split_on_char ':' s with
  | [ "rsa-pub"; bits; n; e ] -> (
      match int_of_string_opt bits with
      | Some bits -> ( try Some { bits; n = Bignum.of_hex n; e = Bignum.of_hex e } with Invalid_argument _ -> None)
      | None -> None)
  | _ -> None

let fingerprint pub = Sha256.digest (public_to_string pub)

(* --- Verification memo ------------------------------------------------- *)

(* Repeated appraisals of the same quote — batch re-checks, audit-receipt
   verification, certificate chains walked once per handshake, gossiped
   tree heads — re-verify byte-identical (key, message, signature)
   triples.  Verification is a pure function of those bytes, so an LRU in
   front of the exponentiation returns the identical verdict at hash
   cost.  Keys are digests (32+32+32 bytes), never the message itself, so
   entries stay small regardless of payload size. *)
module Memo = struct
  type t = bool Lru.t

  let create ~capacity : t = Lru.create ~capacity

  let default_capacity = 4096

  (* One memo per domain: the LRU's intrusive list is not safe to mutate
     concurrently, and the sharded fleet driver verifies on several domains
     at once.  Domain-local tables trade some duplicate verification across
     domains for lock-free access and unchanged single-domain behavior. *)
  let shared_key : t Domain.DLS.key =
    Domain.DLS.new_key (fun () -> Lru.create ~capacity:default_capacity)

  let shared () = Domain.DLS.get shared_key

  let hits (t : t) = Lru.hits t
  let misses (t : t) = Lru.misses t
  let length (t : t) = Lru.length t
  let clear (t : t) = Lru.clear t

  let key pub ~signature msg =
    fingerprint pub ^ Sha256.digest msg ^ Sha256.digest signature
end

let verify_memo ?memo pub ~signature msg =
  let memo = match memo with Some m -> m | None -> Memo.shared () in
  let key = Memo.key pub ~signature msg in
  match Lru.find memo key with
  | Some v -> v
  | None ->
      let v = verify pub ~signature msg in
      Lru.add memo key v;
      v
