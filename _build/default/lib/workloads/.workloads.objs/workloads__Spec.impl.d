lib/workloads/spec.ml: Hypervisor Sim
