type entry = { report : Report.t; expires : Sim.Time.t }

type stats = { hits : int; misses : int; stores : int; invalidations : int }

type t = {
  clock : unit -> Sim.Time.t;
  table : (string * string, entry) Hashtbl.t;
  mutable ttl : Sim.Time.t;
  mutable hits : int;
  mutable misses : int;
  mutable stores : int;
  mutable invalidations : int;
}

let create ?(ttl = 0) ~clock () =
  {
    clock;
    table = Hashtbl.create 64;
    ttl;
    hits = 0;
    misses = 0;
    stores = 0;
    invalidations = 0;
  }

let ttl t = t.ttl
let set_ttl t ttl = t.ttl <- max 0 ttl
let enabled t = t.ttl > 0

let key ~vid ~property = (vid, Property.to_string property)

let find t ~vid ~property =
  if not (enabled t) then None
  else begin
    let k = key ~vid ~property in
    match Hashtbl.find_opt t.table k with
    | Some e when e.expires > t.clock () ->
        t.hits <- t.hits + 1;
        Some e.report
    | Some _ ->
        Hashtbl.remove t.table k;
        t.misses <- t.misses + 1;
        None
    | None ->
        t.misses <- t.misses + 1;
        None
  end

let store t (report : Report.t) =
  if enabled t && Report.is_healthy report then begin
    Hashtbl.replace t.table
      (key ~vid:report.Report.vid ~property:report.Report.property)
      { report; expires = t.clock () + t.ttl };
    t.stores <- t.stores + 1;
    true
  end
  else false

let invalidate t ~vid ~property =
  let k = key ~vid ~property in
  if Hashtbl.mem t.table k then begin
    Hashtbl.remove t.table k;
    t.invalidations <- t.invalidations + 1;
    true
  end
  else false

let invalidate_vm t ~vid =
  let doomed =
    Hashtbl.fold (fun (v, p) _ acc -> if String.equal v vid then (v, p) :: acc else acc) t.table []
  in
  List.iter (Hashtbl.remove t.table) doomed;
  let n = List.length doomed in
  t.invalidations <- t.invalidations + n;
  n

let clear t = Hashtbl.reset t.table
let size t = Hashtbl.length t.table

let stats t =
  { hits = t.hits; misses = t.misses; stores = t.stores; invalidations = t.invalidations }
