lib/verifier/properties.mli: Format Model
