(* CloudMonatt command-line interface.

   Subcommands:
     experiment  -- regenerate the paper's figures (fig4..fig11, verify, all)
     verify      -- check the attestation protocol symbolically
     launch      -- spin up a simulated cloud, launch a VM, attest properties
     catalog     -- list supported properties, images, flavors, workloads *)

open Cmdliner

let seed_arg =
  let doc = "Deterministic simulation seed." in
  Arg.(value & opt int 2015 & info [ "seed" ] ~docv:"SEED" ~doc)

(* --- experiment --------------------------------------------------------- *)

let all_experiments =
  [ "fig4"; "fig5"; "fig6"; "fig7"; "fig9"; "fig10"; "fig11"; "verify"; "cache"; "faults"; "fleet"; "batch"; "audit"; "backends"; "ablations" ]

let experiment_names = all_experiments @ [ "all" ]

let run_experiment seed name =
  match name with
  | "fig4" -> Experiments.Fig4.print (Experiments.Fig4.run ~seed ())
  | "fig5" -> Experiments.Fig5.print (Experiments.Fig5.run ~seed ())
  | "fig6" -> Experiments.Fig6.print (Experiments.Fig6.run ~seed ())
  | "fig7" -> Experiments.Fig7.print (Experiments.Fig7.run ~seed ())
  | "fig9" -> Experiments.Fig9.print (Experiments.Fig9.run ~seed ())
  | "fig10" -> Experiments.Fig10.print (Experiments.Fig10.run ~seed ())
  | "fig11" -> Experiments.Fig11.print (Experiments.Fig11.run ~seed ())
  | "verify" -> Experiments.Protocol_check.print (Experiments.Protocol_check.run ())
  | "cache" -> Experiments.Cache_exp.print (Experiments.Cache_exp.run ~seed ())
  | "faults" -> Experiments.Faults.print (Experiments.Faults.run ~seed ())
  | "fleet" -> Experiments.Fleet_exp.print (Experiments.Fleet_exp.run ~seed ())
  | "batch" -> Experiments.Batch_exp.print (Experiments.Batch_exp.run ~seed ())
  | "audit" -> Experiments.Audit_exp.print (Experiments.Audit_exp.run ~seed ())
  | "backends" -> Experiments.Backends_exp.print (Experiments.Backends_exp.run ~seed ())
  | "ablations" ->
      Experiments.Ablations.print_detector (Experiments.Ablations.detector_sweep ~seed ());
      Experiments.Ablations.print_benign (Experiments.Ablations.benign_false_positives ());
      Experiments.Ablations.print_ticks (Experiments.Ablations.tick_sweep ());
      Experiments.Ablations.print_latency (Experiments.Ablations.detection_latency ~seed ())
  | other ->
      (* unreachable: names are validated before running *)
      Printf.eprintf "unknown experiment %s (try: %s)\n" other (String.concat ", " experiment_names)

let experiment_cmd =
  let names =
    let doc = "Experiments to run (fig4..fig11, verify, cache, faults, fleet, batch, audit, backends, ablations, all)." in
    Arg.(value & pos_all string [ "all" ] & info [] ~docv:"EXPERIMENT" ~doc)
  in
  let run seed names =
    let unknown = List.filter (fun n -> not (List.mem n experiment_names)) names in
    if unknown <> [] then begin
      Printf.eprintf "unknown experiment%s: %s (valid: %s)\n"
        (if List.length unknown > 1 then "s" else "")
        (String.concat ", " unknown)
        (String.concat ", " experiment_names);
      Stdlib.exit 2
    end;
    let names = if List.mem "all" names then all_experiments else names in
    List.iter (run_experiment seed) names
  in
  Cmd.v
    (Cmd.info "experiment" ~doc:"Regenerate the paper's evaluation figures")
    Term.(const run $ seed_arg $ names)

(* --- verify -------------------------------------------------------------- *)

let verify_cmd =
  let run () =
    let results = Experiments.Protocol_check.run () in
    Experiments.Protocol_check.print results;
    if Experiments.Protocol_check.all_as_expected results then begin
      print_endline "\nAll protocol variants behave as expected.";
      0
    end
    else begin
      print_endline "\nUNEXPECTED verification outcome!";
      1
    end
  in
  Cmd.v
    (Cmd.info "verify" ~doc:"Symbolically verify the attestation protocol (section 7.2.2)")
    Term.(const (fun () -> Stdlib.exit (run ())) $ const ())

(* --- launch ---------------------------------------------------------------- *)

let property_conv =
  let parse s =
    match Core.Property.of_string s with
    | Some p -> Ok p
    | None ->
        Error
          (`Msg
            (Printf.sprintf "unknown property %s (known: %s)" s
               (String.concat ", " (List.map Core.Property.to_string Core.Property.all))))
  in
  Arg.conv (parse, Core.Property.pp)

let launch_cmd =
  let image =
    Arg.(value & opt string "ubuntu" & info [ "image" ] ~docv:"IMAGE" ~doc:"VM image name.")
  in
  let flavor =
    Arg.(value & opt string "small" & info [ "flavor" ] ~docv:"FLAVOR" ~doc:"VM flavor.")
  in
  let workload =
    Arg.(value & opt string "busy" & info [ "workload" ] ~docv:"WORKLOAD" ~doc:"Workload name.")
  in
  let properties =
    Arg.(
      value
      & opt_all property_conv Core.Property.all
      & info [ "property"; "p" ] ~docv:"PROPERTY" ~doc:"Security property to monitor (repeatable).")
  in
  let run seed image flavor workload properties =
    let config = { Core.Cloud.default_config with seed; key_bits = 512 } in
    let cloud = Core.Cloud.build ~config () in
    let customer = Core.Cloud.Customer.create cloud ~name:"cli-user" in
    Printf.printf "Launching %s/%s with workload %s...\n%!" image flavor workload;
    match Core.Cloud.Customer.launch customer ~image ~flavor ~properties ~workload () with
    | Error e -> Format.printf "launch failed: %a@." Core.Cloud.Customer.pp_error e
    | Ok info ->
        Printf.printf "VM %s launched. Stages:\n" info.Core.Commands.vid;
        List.iter
          (fun (stage, cost) -> Printf.printf "  %-12s %6.0f ms\n" stage (Sim.Time.to_ms cost))
          info.Core.Commands.stages;
        Core.Cloud.run_for cloud (Sim.Time.sec 5);
        print_endline "\nAttestation results after 5 s of simulated runtime:";
        List.iter
          (fun property ->
            match Core.Cloud.Customer.attest customer ~vid:info.Core.Commands.vid ~property with
            | Ok report ->
                Format.printf "  %-22s %a  (%s)@."
                  (Core.Property.to_string property)
                  Core.Report.pp_status report.Core.Report.status report.Core.Report.evidence
            | Error e ->
                Format.printf "  %-22s error: %a@."
                  (Core.Property.to_string property)
                  Core.Cloud.Customer.pp_error e)
          properties
  in
  Cmd.v
    (Cmd.info "launch" ~doc:"Launch a monitored VM in a simulated cloud and attest it")
    Term.(const run $ seed_arg $ image $ flavor $ workload $ properties)

(* --- catalog ------------------------------------------------------------------ *)

let catalog_cmd =
  let run () =
    print_endline "Security properties (paper section 4):";
    List.iter
      (fun p -> Printf.printf "  %s\n" (Core.Property.to_string p))
      Core.Property.all;
    print_endline "\nImages:";
    List.iter
      (fun i -> Printf.printf "  %-8s %4d MB\n" (Hypervisor.Image.name i) (Hypervisor.Image.size_mb i))
      [ Hypervisor.Image.cirros; Hypervisor.Image.fedora; Hypervisor.Image.ubuntu ];
    print_endline "\nFlavors:";
    List.iter (fun f -> Format.printf "  %a@." Hypervisor.Flavor.pp f) Hypervisor.Flavor.all;
    print_endline "\nWorkloads: idle, busy, database, file, web, app, stream, mail"
  in
  Cmd.v (Cmd.info "catalog" ~doc:"List properties, images, flavors and workloads")
    Term.(const run $ const ())

let main_cmd =
  let doc = "CloudMonatt: security health monitoring and attestation of VMs (ISCA'15)" in
  Cmd.group (Cmd.info "cloudmonatt" ~version:"1.0.0" ~doc)
    [ experiment_cmd; verify_cmd; launch_cmd; catalog_cmd ]

let () = exit (Cmd.eval main_cmd)
