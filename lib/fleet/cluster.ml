type verdict = Done of Core.Report.status | Shed

type job = {
  vid : string;
  property : Core.Property.t;
  key : string * string;
  mutable waiters : (verdict -> unit) list;  (* newest first *)
}

type t = {
  engine : Sim.Engine.t;
  name : string;
  capacity : int;
  queue : job Pqueue.t;
  inflight : (string * string, job) Hashtbl.t;  (* queued or in service *)
  service_time : unit -> Sim.Time.t;
  measure : vid:string -> property:Core.Property.t -> Core.Report.status;
  metrics : Metrics.t;
  gauge : Sim.Stats.Gauge.t;
  mutable busy : int;
}

let create ~engine ~name ?(capacity = 1) ~queue_depth ~service_time ~measure ~metrics () =
  if capacity <= 0 then invalid_arg "Cluster.create: capacity must be positive";
  {
    engine;
    name;
    capacity;
    queue = Pqueue.create ~depth:queue_depth;
    inflight = Hashtbl.create 64;
    service_time;
    measure;
    metrics;
    gauge = Sim.Stats.Gauge.create ();
    busy = 0;
  }

let name t = t.name
let queue_length t = Pqueue.length t.queue
let inflight t = Hashtbl.length t.inflight
let queue_gauge t = t.gauge

let track_depth t =
  Sim.Stats.Gauge.set t.gauge
    ~now:(Sim.Time.to_sec (Sim.Engine.now t.engine))
    (Pqueue.length t.queue)

let finish job verdict = List.iter (fun w -> w verdict) (List.rev job.waiters)

let rec maybe_start t =
  if t.busy < t.capacity then begin
    match Pqueue.pop t.queue with
    | None -> ()
    | Some (_, job) ->
        track_depth t;
        t.busy <- t.busy + 1;
        Metrics.record_measurement t.metrics;
        ignore
          (Sim.Engine.schedule_after t.engine ~delay:(t.service_time ()) (fun () ->
               t.busy <- t.busy - 1;
               (* Remove before delivering: a requester reacting to the
                  verdict (e.g. an immediate re-check) starts a fresh
                  measurement rather than joining this finished one. *)
               Hashtbl.remove t.inflight job.key;
               let status = t.measure ~vid:job.vid ~property:job.property in
               finish job (Done status);
               maybe_start t)
            : Sim.Engine.handle);
        maybe_start t
  end

let submit t ~vid ~property ~priority ~on_done =
  let key = (vid, Core.Property.to_string property) in
  match Hashtbl.find_opt t.inflight key with
  | Some job ->
      (* Coalesce: share the pending measurement's verdict. *)
      job.waiters <- on_done :: job.waiters;
      Metrics.record_coalesced t.metrics
  | None -> (
      let job = { vid; property; key; waiters = [ on_done ] } in
      match Pqueue.push t.queue priority job with
      | Pqueue.Rejected ->
          Metrics.record_shed t.metrics priority;
          on_done Shed
      | Pqueue.Enqueued ->
          Hashtbl.replace t.inflight key job;
          track_depth t;
          maybe_start t
      | Pqueue.Evicted (victim_priority, victim) ->
          Hashtbl.remove t.inflight victim.key;
          List.iter
            (fun w ->
              Metrics.record_shed t.metrics victim_priority;
              w Shed)
            (List.rev victim.waiters);
          Hashtbl.replace t.inflight key job;
          track_depth t;
          maybe_start t)
