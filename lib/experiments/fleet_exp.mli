(** Fleet-scale attestation throughput experiment.

    Sweeps offered arrival rate x AS shard count x verdict-cache TTL over a
    deterministic fleet (see {!Fleet.Driver}) and reports offered vs served
    throughput, latency percentiles, cache hit rate and shed counts — the
    baseline every scaling PR is measured against. *)

type row = {
  rate : float;
  as_count : int;
  ttl : Sim.Time.t;
  r : Fleet.Driver.result;
}

type result = { seed : int; scale : string; rows : row list }

val run : ?seed:int -> ?scale:[ `Default | `Smoke ] -> unit -> result
(** [scale] defaults to [`Smoke] when the environment variable
    [CLOUDMONATT_FLEET_SCALE] is ["smoke"] (the CI setting), else
    [`Default]. *)

val print : result -> unit
val to_json : result -> Json.t

val audit_fields : Fleet.Driver.result -> (string * Json.t) list
(** [[]] unless the run had auditing on, in which case one ["audit"]
    object (checkpoint interval and the four transparency counters) —
    shared by every row emitter so audit-off artifacts stay
    byte-identical to their pre-audit form. *)
