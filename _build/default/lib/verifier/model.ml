type variant = {
  encrypt : bool;
  sign_measurements : bool;
  sign_report : bool;
  bind_nonces : bool;
  leak_channel_keys : bool;
}

let secure =
  {
    encrypt = true;
    sign_measurements = true;
    sign_report = true;
    bind_nonces = true;
    leak_channel_keys = false;
  }

let no_encryption = { secure with encrypt = false }
let no_measurement_signature = { secure with sign_measurements = false; leak_channel_keys = true }
let no_report_signature = { secure with sign_report = false; leak_channel_keys = true }
let no_nonces = { secure with bind_nonces = false }
let compromised_channels = { secure with leak_channel_keys = true }

type session = {
  idx : int;
  n1 : Term.t;
  n2 : Term.t;
  n3 : Term.t;
  property : Term.t;
  requests : Term.t;
  measurements : Term.t;
  report : Term.t;
  asks : Term.t;
}

type t = {
  variant : variant;
  skcust : Term.t;
  skc : Term.t;
  ska : Term.t;
  sks : Term.t;
  kx : Term.t;
  ky : Term.t;
  kz : Term.t;
  vid : Term.t;
  server_id : Term.t;
  sessions : session list;
  knowledge : Deduction.t;
}

open Term

let fresh name idx = Fresh (Printf.sprintf "%s_%d" name idx)

(* The customer re-attests the same property over time (periodic
   attestation), so P and rM are shared across sessions while nonces,
   measurements, reports and session keys are per-session fresh.  Sharing
   P/rM is what makes cross-session replay a real threat the nonces must
   defeat. *)
let shared_property = Fresh "P"
let shared_requests = Fresh "rM"

let make_session idx =
  {
    idx;
    n1 = fresh "N1" idx;
    n2 = fresh "N2" idx;
    n3 = fresh "N3" idx;
    property = shared_property;
    requests = shared_requests;
    measurements = fresh "M" idx;
    report = fresh "R" idx;
    asks = fresh "ASKs" idx;
  }

let enc t key body = if t.variant.encrypt then Senc (key, body) else body

let with_nonce t nonce fields = if t.variant.bind_nonces then fields @ [ nonce ] else fields

(* Message 1: customer -> controller, (Vid, P, N1) under Kx. *)
let msg_customer_request t s =
  enc t t.kx (pair_list (with_nonce t s.n1 [ t.vid; s.property ]))

(* Message 2: controller -> AS, (Vid, I, P, N2) under Ky. *)
let msg_controller_to_as t s =
  enc t t.ky (pair_list (with_nonce t s.n2 [ t.vid; t.server_id; s.property ]))

(* Message 3: AS -> cloud server, (Vid, rM, N3) under Kz. *)
let msg_as_to_server t s = enc t t.kz (pair_list (with_nonce t s.n3 [ t.vid; s.requests ]))

(* Message 4: server -> AS, ([Vid,rM,M,N3,Q3]ASKs) under Kz,
   Q3 = H(Vid || rM || M || N3). *)
let msg_server_response t s ~measurements ~key =
  let fields = with_nonce t s.n3 [ t.vid; s.requests; measurements ] in
  let quoted = pair_list (fields @ [ Hash (pair_list fields) ]) in
  let body = if t.variant.sign_measurements then Sign (key, quoted) else quoted in
  enc t t.kz body

(* Message 5: AS -> controller, ([Vid,I,P,R,N2,Q2]SKa) under Ky. *)
let msg_as_report t s ~report ~key =
  let fields = with_nonce t s.n2 [ t.vid; t.server_id; s.property; report ] in
  let quoted = pair_list (fields @ [ Hash (pair_list fields) ]) in
  let body = if t.variant.sign_report then Sign (key, quoted) else quoted in
  enc t t.ky body

(* Message 6: controller -> customer, ([Vid,P,R,N1,Q1]SKc) under Kx. *)
let msg_controller_report t s ~report ~key =
  let fields = with_nonce t s.n1 [ t.vid; s.property; report ] in
  let quoted = pair_list (fields @ [ Hash (pair_list fields) ]) in
  let body = if t.variant.sign_report then Sign (key, quoted) else quoted in
  enc t t.kx body

let endorsement t ~key = Sign (t.sks, Pub key)

let build variant =
  let skcust = Fresh "SKcust" in
  let skc = Fresh "SKc" in
  let ska = Fresh "SKa" in
  let sks = Fresh "SKs" in
  let kx = Fresh "Kx" in
  let ky = Fresh "Ky" in
  let kz = Fresh "Kz" in
  let t =
    {
      variant;
      skcust;
      skc;
      ska;
      sks;
      kx;
      ky;
      kz;
      vid = Const "vid-42";
      server_id = Const "server-I";
      sessions = [ make_session 1; make_session 2 ];
      knowledge = Deduction.of_list [];
    }
  in
  let traffic s =
    [
      msg_customer_request t s;
      msg_controller_to_as t s;
      msg_as_to_server t s;
      msg_server_response t s ~measurements:s.measurements ~key:s.asks;
      endorsement t ~key:s.asks;
      (* the AVKs certificate request is public *)
      msg_as_report t s ~report:s.report ~key:ska;
      msg_controller_report t s ~report:s.report ~key:skc;
    ]
  in
  let attacker_sk = Fresh "SKi" in
  let initial =
    [
      Const "vid-42";
      Const "server-I";
      Pub skcust;
      Pub skc;
      Pub ska;
      Pub sks;
      attacker_sk;
      Pub attacker_sk;
    ]
    @ List.map (fun s -> Pub s.asks) t.sessions
    @ (if variant.leak_channel_keys then [ kx; ky; kz ] else [])
    @ List.concat_map traffic t.sessions
  in
  { t with knowledge = Deduction.of_list initial }
