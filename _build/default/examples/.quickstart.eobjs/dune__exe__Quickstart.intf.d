examples/quickstart.mli:
