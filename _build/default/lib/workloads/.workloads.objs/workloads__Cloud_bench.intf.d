lib/workloads/cloud_bench.mli: Hypervisor Sim
