lib/core/property.ml: Format List Stdlib String Wire
