examples/availability_attack.ml: Attacks Cloud Commands Controller Core Format Hypervisor List Option Printf Property Report Sim
