(** Binary codec combinators.

    Every message that crosses the simulated network is serialized with
    these, so the Dolev-Yao adversary manipulates real bytes and tampering
    is caught by real MAC/signature checks, not by construction. *)

exception Error of string
(** Raised by decoders on malformed input. *)

(** Encoder: append typed fields to a growing buffer. *)
module Enc : sig
  type t

  val create : unit -> t
  val to_string : t -> string
  val u8 : t -> int -> unit
  val u16 : t -> int -> unit
  val u32 : t -> int -> unit

  val int : t -> int -> unit
  (** Full 63-bit non-negative int (8 bytes on the wire). *)

  val bool : t -> bool -> unit

  val str : t -> string -> unit
  (** Length-prefixed byte string. *)

  val raw : t -> string -> unit
  (** Raw bytes without length prefix (use only for fixed-size fields). *)

  val list : t -> ('a -> unit) -> 'a list -> unit
  val option : t -> ('a -> unit) -> 'a option -> unit
  val int_array : t -> int array -> unit
end

(** Decoder: consume typed fields from a string. *)
module Dec : sig
  type t

  val of_string : string -> t
  val u8 : t -> int
  val u16 : t -> int
  val u32 : t -> int
  val int : t -> int
  val bool : t -> bool
  val str : t -> string
  val raw : t -> int -> string
  val list : t -> (t -> 'a) -> 'a list
  val option : t -> (t -> 'a) -> 'a option
  val int_array : t -> int array

  val expect_end : t -> unit
  (** @raise Error when trailing bytes remain. *)

  val remaining : t -> int
end

val encode : (Enc.t -> unit) -> string
(** [encode f] runs [f] on a fresh encoder and returns the bytes. *)

val decode : string -> (Dec.t -> 'a) -> 'a
(** [decode s f] decodes with [f] and checks that all input is consumed. *)

val decode_opt : string -> (Dec.t -> 'a) -> 'a option
(** Like {!decode} but returns [None] instead of raising {!Error}. *)
