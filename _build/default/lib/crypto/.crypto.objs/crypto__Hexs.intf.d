lib/crypto/hexs.mli: Format
