lib/sim/prng.mli:
