(* Per-phrase Dolev-Yao verification.

   Where [Verifier.Model] hardcodes the paper's one protocol, this module
   *generates* the symbolic model from a phrase: two protocol sessions over
   long-lived channel keys (channels are cached across attestation rounds,
   exactly like the simulator's), per-leaf session keys and nonces, plus
   the knowledge an attacker gains from each weakened operator —

   - a no-nonce appraisal ("a-") makes both sessions use the same public
     nonce constant, so replayed session-1 material matches session-2
     acceptance patterns;
   - an unauthenticated delegation ("d-") sends the controller <-> sub-AS
     hop in the clear and drops the delegation certificate from report
     acceptance, so the attacker's own key signs accepted reports;
   - an unchecked layer ("l-") trusts quotes from a host whose restored
     trust backend was never re-registered: the stale state leaks the
     host's channel key and an epoch-0-endorsed session key, and report
     acceptance no longer pins the binding epoch.

   The same eight checks as [Verifier.Properties] (the paper's six section
   7.2.2 properties) are replayed over the generated model, and every
   violation is turned into a concrete attack: the forged or replayed
   message together with its [Deduction.prove] derivation. *)

module T = Verifier.Term
module D = Verifier.Deduction
module P = Verifier.Properties

type attack = {
  check_id : string;
  description : string;
  message : T.t;
  proof : D.proof;
}

type report = {
  phrase : Phrase.t;
  checks : P.check list;
  attacks : attack list;
}

(* --- Key and payload vocabulary ------------------------------------------- *)

let skc = T.Fresh "SKc"
let ski = T.Fresh "SKi" (* the attacker's own signing key *)
let kx = T.Fresh "Kx"
let ska c = T.Fresh (Printf.sprintf "SKa%d" c)
let ky c = T.Fresh (Printf.sprintf "Ky%d" c)
let sks h = T.Fresh (Printf.sprintf "SKs%d" h)
let kz s = T.Fresh (Printf.sprintf "Kz%d" s)
let stale_key h = T.Fresh (Printf.sprintf "ASKstale%d" h)
let payload_p = T.Fresh "P"
let payload_m = T.Fresh "rM"
let payload_r = T.Fresh "rR"
let fresh_epoch = T.Const "epoch1"
let stale_epoch = T.Const "epoch0"
let reused_nonce = T.Const "nonce0"
let evil_measurements = T.Const "evil-measurements"
let evil_report = T.Const "report-says-healthy"

(* One leaf appraisal with its weakenings resolved. *)
type lview = {
  leaf : Phrase.leaf;
  cluster : int;  (** appraising AS cluster (0 outside delegations) *)
  unauth : bool;  (** delegated without authentication *)
  unchecked : bool;  (** layered but freshness check skipped *)
  hostkey : int;  (** which host identity key endorses this leaf's quotes *)
}

let view (l : Phrase.leaf) =
  let cluster, unauth =
    match l.Phrase.deleg with Some (c, auth) -> (c, not auth) | None -> (0, false)
  in
  let unchecked = match l.Phrase.layer with Some (_, checked) -> not checked | None -> false in
  let hostkey = match l.Phrase.layer with Some (ls, _) -> ls | None -> l.Phrase.slot in
  { leaf = l; cluster; unauth; unchecked; hostkey }

let vid v = T.Const (Printf.sprintf "vm%d" v.leaf.Phrase.slot)
let srv v = T.Const (Printf.sprintf "server%d" v.leaf.Phrase.slot)
let propc v = T.Const (Printf.sprintf "prop%d" v.leaf.Phrase.prop)
let asks i v = T.Fresh (Printf.sprintf "ASKs.%d.%d" i v.leaf.Phrase.index)

let n1 i = T.Fresh (Printf.sprintf "N1.%d" i)

let n2 i v =
  if v.leaf.Phrase.nonce then T.Fresh (Printf.sprintf "N2.%d.%d" i v.leaf.Phrase.index)
  else reused_nonce

let n3 i v =
  if v.leaf.Phrase.nonce then T.Fresh (Printf.sprintf "N3.%d.%d" i v.leaf.Phrase.index)
  else reused_nonce

let sessions = [ 1; 2 ]

let dedup xs = List.sort_uniq compare xs

(* --- Model generation ------------------------------------------------------ *)

let meas i v = T.pair_list [ vid v; payload_m; n3 i v ]
let rep i v = T.pair_list [ vid v; propc v; payload_r; n2 i v ]
let endorsement i v = T.Sign (sks v.hostkey, T.pair_list [ T.Pub (asks i v); fresh_epoch ])
let measurement_reply i v = T.Senc (kz v.leaf.Phrase.slot, T.Pair (meas i v, T.Sign (asks i v, meas i v)))
let deleg_cert c = T.Sign (skc, T.pair_list [ T.Const "deleg"; T.Pub (ska c) ])

(* Everything one session of one leaf puts on the wire. *)
let traffic i v =
  let s = v.leaf.Phrase.slot in
  let request_body = T.pair_list [ vid v; srv v; payload_p; n2 i v ] in
  let signed_rep = T.Sign (ska v.cluster, rep i v) in
  [
    (* customer -> controller *)
    T.Senc (kx, T.pair_list [ vid v; propc v; payload_p; n1 i ]);
    (* controller -> AS: in the clear when the delegation skips
       authentication *)
    (if v.unauth then request_body else T.Senc (ky v.cluster, request_body));
    (* AS -> server measurement request *)
    T.Senc (kz s, T.pair_list [ vid v; T.Const "requests"; n3 i v ]);
    (* server -> AS: quoted measurements + session-key endorsement *)
    measurement_reply i v;
    endorsement i v;
    (* AS -> controller report *)
    (if v.unauth then signed_rep else T.Senc (ky v.cluster, signed_rep));
    (* controller -> customer *)
    T.Senc (kx, T.Sign (skc, T.pair_list [ vid v; propc v; payload_r; n1 i ]));
  ]

let stale_leak v =
  if not v.unchecked then []
  else
    [
      (* The restored-but-never-rebound backend state: the host's channel
         key and an old, epoch-0-endorsed session key. *)
      kz v.leaf.Phrase.slot;
      stale_key v.hostkey;
      T.Sign (sks v.hostkey, T.pair_list [ T.Pub (stale_key v.hostkey); stale_epoch ]);
    ]

let knowledge views =
  let clusters = dedup (List.map (fun v -> v.cluster) views) in
  let hostkeys = dedup (List.map (fun v -> v.hostkey) views) in
  let auth_deleg_clusters =
    dedup (List.filter_map (fun v ->
        match v.leaf.Phrase.deleg with Some (c, true) -> Some c | _ -> None) views)
  in
  List.concat
    [
      [ ski; T.Pub ski; T.Pub skc ];
      List.map (fun c -> T.Pub (ska c)) clusters;
      List.map (fun h -> T.Pub (sks h)) hostkeys;
      List.map deleg_cert auth_deleg_clusters;
      List.concat_map (fun i -> List.concat_map (traffic i) views) sessions;
      List.concat_map stale_leak views;
    ]

(* --- Checks ---------------------------------------------------------------- *)

let accepted_epochs v = if v.unchecked then [ stale_epoch; fresh_epoch ] else [ fresh_epoch ]

let verify phrase =
  let views = List.map view (Phrase.leaves phrase) in
  let know = D.of_list (knowledge views) in
  let attacks = ref [] in
  let add_attack check_id description message =
    match D.prove know message with
    | Some proof -> attacks := { check_id; description; message; proof } :: !attacks
    | None -> ()
  in
  (* A secrecy-style check: every derivable item is a violation and its own
     attack witness. *)
  let secrecy id name items =
    let broken = List.filter (fun (_, t) -> D.derives know t) items in
    List.iter (fun (d, t) -> add_attack id d t) broken;
    {
      P.id;
      name;
      outcome =
        (match broken with
        | [] -> P.Holds
        | (d, _) :: _ -> P.Violated d);
    }
  in
  (* A forgery-style check: a violation is an accepting term the attacker
     can derive (acceptance side conditions already folded in). *)
  let forgery id name candidates =
    let broken = List.filter (fun (_, t, extra) ->
        D.derives know t && List.for_all (D.derives know) extra) candidates
    in
    List.iter (fun (d, t, _) -> add_attack id d t) broken;
    {
      P.id;
      name;
      outcome =
        (match broken with
        | [] -> P.Holds
        | (d, _, _) :: _ -> P.Violated d);
    }
  in
  let clusters = dedup (List.map (fun v -> v.cluster) views) in
  let hostkeys = dedup (List.map (fun v -> v.hostkey) views) in
  let slots = dedup (List.map (fun v -> v.leaf.Phrase.slot) views) in
  let leaf_label v = Printf.sprintf "leaf %d (vm%d)" v.leaf.Phrase.index v.leaf.Phrase.slot in
  let checks =
    [
      secrecy "secrecy-channel-keys" "(1a) session keys Kx/Ky/Kz stay secret"
        (("customer channel key Kx leaked", kx)
        :: List.map (fun c -> (Printf.sprintf "controller<->AS%d channel key leaked" c, ky c)) clusters
        @ List.map (fun s -> (Printf.sprintf "AS<->server%d channel key leaked" s, kz s)) slots);
      secrecy "secrecy-identity-keys" "(1b) private keys SKcust/SKc/SKa/SKs/ASKs stay secret"
        ((("controller key SKc leaked", skc)
         :: List.map (fun c -> (Printf.sprintf "AS%d key leaked" c, ska c)) clusters)
        @ List.map (fun h -> (Printf.sprintf "server%d identity key leaked" h, sks h)) hostkeys
        @ List.concat_map
            (fun v ->
              List.map
                (fun i -> (Printf.sprintf "%s session key (session %d) leaked" (leaf_label v) i, asks i v))
                sessions)
            views);
      secrecy "secrecy-payloads" "(2) P, M and R stay secret"
        [
          ("property payload P leaked", payload_p);
          ("measurements M leaked", payload_m);
          ("report R leaked", payload_r);
        ];
      forgery "integrity" "(3) P, M and R cannot be modified"
        (List.concat_map
           (fun v ->
             let s = v.leaf.Phrase.slot in
             let evil_meas = T.pair_list [ vid v; evil_measurements; n3 2 v ] in
             let evil_rep = T.pair_list [ vid v; propc v; evil_report; n2 2 v ] in
             let meas_forgeries =
               let keys = (ski, "the attacker's key") :: (if v.unchecked then [ (stale_key v.hostkey, "the leaked stale session key") ] else []) in
               List.concat_map
                 (fun (k, kd) ->
                   List.map
                     (fun epoch ->
                       ( Printf.sprintf
                           "%s: forged measurements signed with %s pass the endorsement check"
                           (leaf_label v) kd,
                         T.Senc (kz s, T.Pair (evil_meas, T.Sign (k, evil_meas))),
                         [ T.Sign (sks v.hostkey, T.pair_list [ T.Pub k; epoch ]) ] ))
                     (accepted_epochs v))
                 keys
             in
             let rep_forgeries =
               if v.unauth then
                 [
                   ( Printf.sprintf
                       "%s: unauthenticated delegation accepts a report signed by the attacker"
                       (leaf_label v),
                     T.Sign (ski, evil_rep),
                     [] );
                 ]
               else
                 [
                   ( Printf.sprintf "%s: forged AS report" (leaf_label v),
                     T.Senc (ky v.cluster, T.Sign (ska v.cluster, evil_rep)),
                     [] );
                 ]
             in
             let customer_forgery =
               [
                 ( Printf.sprintf "%s: forged controller report" (leaf_label v),
                   T.Senc (kx, T.Sign (skc, T.pair_list [ vid v; propc v; evil_report; n1 2 ])),
                   [] );
               ]
             in
             meas_forgeries @ rep_forgeries @ customer_forgery)
           views);
      forgery "freshness" "(3b) nonces reject cross-session replay"
        (List.filter_map
           (fun v ->
             if v.leaf.Phrase.nonce then None
             else
               Some
                 ( Printf.sprintf
                     "%s: reused nonce lets the session-1 measurement quote replay into \
                      session 2"
                     (leaf_label v),
                   measurement_reply 1 v,
                   [] ))
           views);
      forgery "auth-customer-controller" "(4) customer <-> controller authenticated"
        (("customer channel key Kx derivable", kx, [])
        :: List.map
             (fun v ->
               ( Printf.sprintf "%s: forged customer-facing report" (leaf_label v),
                 T.Senc (kx, T.Sign (skc, T.pair_list [ vid v; propc v; evil_report; n1 2 ])),
                 [] ))
             views);
      forgery "auth-controller-as" "(5) controller <-> attestation server authenticated"
        (List.concat_map
           (fun v ->
             let evil_rep = T.pair_list [ vid v; propc v; evil_report; n2 2 v ] in
             [
               ( Printf.sprintf "controller<->AS%d channel key derivable" v.cluster,
                 ky v.cluster,
                 [] );
               (if v.unauth then
                  ( Printf.sprintf
                      "%s: attacker impersonates the unauthenticated sub-appraiser"
                      (leaf_label v),
                    T.Sign (ski, evil_rep),
                    [] )
                else
                  ( Printf.sprintf "%s: forged delegation certificate" (leaf_label v),
                    T.Sign (skc, T.pair_list [ T.Const "deleg"; T.Pub ski ]),
                    [] ));
             ])
           views);
      forgery "auth-as-server" "(6) attestation server <-> cloud server authenticated"
        (List.concat_map
           (fun v ->
             let s = v.leaf.Phrase.slot in
             ( Printf.sprintf "%s: attacker injects a measurement request to the server"
                 (leaf_label v),
               T.Senc (kz s, T.pair_list [ vid v; T.Const "requests"; T.Const "evil-nonce" ]),
               [] )
             :: List.map
                  (fun epoch ->
                    ( Printf.sprintf
                        "%s: attacker impersonates the server with an accepted stale \
                         endorsement"
                        (leaf_label v),
                      T.Sign (sks v.hostkey, T.pair_list [ T.Pub (stale_key v.hostkey); epoch ]),
                      [] ))
                  (accepted_epochs v))
           views);
    ]
  in
  (* Re-order: the identity-key check sits second in [P.check_ids]. *)
  let ordered =
    List.filter_map (fun id -> List.find_opt (fun c -> String.equal c.P.id id) checks) P.check_ids
  in
  { phrase; checks = ordered; attacks = List.rev !attacks }

let holds r = P.holds r.checks

let violated r =
  List.filter_map
    (fun c -> match c.P.outcome with P.Violated _ -> Some c.P.id | P.Holds -> None)
    r.checks

let pp_attack ppf a =
  Format.fprintf ppf "@[<v 2>[%s] %s@,message: %a@,%a@]" a.check_id a.description T.pp
    a.message D.pp_proof a.proof
