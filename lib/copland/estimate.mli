(** Static latency/message estimates per phrase, derived from the same
    {!Core.Costs} constants the live ledgers charge.

    [compute] bounds the total non-network ledger work of one execution of
    the phrase; [messages] bounds the wire messages.  The bounds cover the
    non-lossy paths only: verdict-cache hits and the stale-vTPM short
    circuit push the low bound down, cold channel handshakes and audit
    receipts push the high bound up, and network retries can exceed the
    high bound — only apply the upper bounds to runs with no drops. *)

type t = {
  appraisals : int;
  messages_min : int;
  messages_max : int;
  compute_min : Sim.Time.t;
  compute_max : Sim.Time.t;
}

val of_phrase : Env.t -> Phrase.t -> t
val pp : Format.formatter -> t -> unit
