test/test_monitors.ml: Alcotest Array Hypervisor Integrity_unit List Measurement Monitor_kernel Monitors Option Printf QCheck QCheck_alcotest Result Sim Tpm Vmi_tool Vmm_profile
