module Codec = Wire.Codec

type attest_request = { vid : string; property : Property.t; nonce : string }

type as_request = { vid : string; server : string; property : Property.t; nonce : string }

type measure_request = { vid : string; requests_raw : string; nonce : string }

type measure_response = {
  vid : string;
  requests_raw : string;
  values_raw : string;
  nonce : string;
  quote : string;
  signature : string;
  avk : string;
  endorsement : string;
}

type as_report = {
  vid : string;
  server : string;
  property : Property.t;
  report : Report.t;
  nonce : string;
  quote : string;
  signature : string;
}

type controller_report = {
  vid : string;
  property : Property.t;
  report : Report.t;
  nonce : string;
  quote : string;
  signature : string;
}

(* --- Batched attestation -------------------------------------------------- *)

(* Magic first fields let the batch messages share a channel with the
   unbatched ones: the decoder that matches wins, and [Codec.decode]'s
   trailing-bytes check keeps the formats from shadowing each other. *)
let batch_measure_magic = "cm-batch-measure/1"
let batch_as_magic = "cm-batch-as/1"

type batch_measure_request = {
  bm_items : (string * string) list; (* (vid, requests_raw) *)
  bm_nonce : string; (* N3, shared by the whole batch *)
}

type batch_item = {
  bi_vid : string;
  bi_requests_raw : string;
  bi_values_raw : string;
  bi_proof : Crypto.Merkle.proof; (* inclusion of this item's Q3 leaf *)
}

type batch_measure_response = {
  br_items : batch_item list;
  br_nonce : string; (* echo of N3 *)
  br_root : string; (* Merkle root over the items' Q3 quotes *)
  br_signature : string; (* [root||N3]ASKs — one signature for the batch *)
  br_avk : string;
  br_endorsement : string;
}

type batch_as_request = {
  ba_server : string;
  ba_items : (string * Property.t) list; (* (vid, property) *)
  ba_nonce : string; (* N2, shared by the whole batch *)
}

(* --- Quotes ------------------------------------------------------------- *)

let q3 ~vid ~requests_raw ~values_raw ~nonce =
  Crypto.Sha256.digest_list [ "Q3|"; vid; "|"; requests_raw; "|"; values_raw; "|"; nonce ]

let q2 ~vid ~server ~property ~report ~nonce =
  Crypto.Sha256.digest_list
    [
      "Q2|";
      vid;
      "|";
      server;
      "|";
      Property.to_string property;
      "|";
      Codec.encode (fun e -> Report.encode e report);
      "|";
      nonce;
    ]

let q1 ~vid ~property ~report ~nonce =
  Crypto.Sha256.digest_list
    [
      "Q1|";
      vid;
      "|";
      Property.to_string property;
      "|";
      Codec.encode (fun e -> Report.encode e report);
      "|";
      nonce;
    ]

(* --- Signature payloads -------------------------------------------------- *)

let measure_response_payload (r : measure_response) =
  Codec.encode (fun e ->
      Codec.Enc.str e "measure-response";
      Codec.Enc.str e r.vid;
      Codec.Enc.str e r.requests_raw;
      Codec.Enc.str e r.values_raw;
      Codec.Enc.str e r.nonce;
      Codec.Enc.str e r.quote)

let as_report_payload (r : as_report) =
  Codec.encode (fun e ->
      Codec.Enc.str e "as-report";
      Codec.Enc.str e r.vid;
      Codec.Enc.str e r.server;
      Property.encode e r.property;
      Report.encode e r.report;
      Codec.Enc.str e r.nonce;
      Codec.Enc.str e r.quote)

let controller_report_payload (r : controller_report) =
  Codec.encode (fun e ->
      Codec.Enc.str e "controller-report";
      Codec.Enc.str e r.vid;
      Property.encode e r.property;
      Report.encode e r.report;
      Codec.Enc.str e r.nonce;
      Codec.Enc.str e r.quote)

(* --- Wire codecs ---------------------------------------------------------- *)

let encode_attest_request (r : attest_request) =
  Codec.encode (fun e ->
      Codec.Enc.str e r.vid;
      Property.encode e r.property;
      Codec.Enc.str e r.nonce)

let decode_attest_request s =
  Codec.decode_opt s (fun d ->
      let vid = Codec.Dec.str d in
      let property = Property.decode d in
      let nonce = Codec.Dec.str d in
      { vid; property; nonce })

let encode_as_request (r : as_request) =
  Codec.encode (fun e ->
      Codec.Enc.str e r.vid;
      Codec.Enc.str e r.server;
      Property.encode e r.property;
      Codec.Enc.str e r.nonce)

let decode_as_request s =
  Codec.decode_opt s (fun d ->
      let vid = Codec.Dec.str d in
      let server = Codec.Dec.str d in
      let property = Property.decode d in
      let nonce = Codec.Dec.str d in
      { vid; server; property; nonce })

let encode_measure_request (r : measure_request) =
  Codec.encode (fun e ->
      Codec.Enc.str e r.vid;
      Codec.Enc.str e r.requests_raw;
      Codec.Enc.str e r.nonce)

let decode_measure_request s =
  Codec.decode_opt s (fun d ->
      let vid = Codec.Dec.str d in
      let requests_raw = Codec.Dec.str d in
      let nonce = Codec.Dec.str d in
      { vid; requests_raw; nonce })

let encode_measure_response (r : measure_response) =
  Codec.encode (fun e ->
      Codec.Enc.str e r.vid;
      Codec.Enc.str e r.requests_raw;
      Codec.Enc.str e r.values_raw;
      Codec.Enc.str e r.nonce;
      Codec.Enc.str e r.quote;
      Codec.Enc.str e r.signature;
      Codec.Enc.str e r.avk;
      Codec.Enc.str e r.endorsement)

let decode_measure_response s =
  Codec.decode_opt s (fun d ->
      let vid = Codec.Dec.str d in
      let requests_raw = Codec.Dec.str d in
      let values_raw = Codec.Dec.str d in
      let nonce = Codec.Dec.str d in
      let quote = Codec.Dec.str d in
      let signature = Codec.Dec.str d in
      let avk = Codec.Dec.str d in
      let endorsement = Codec.Dec.str d in
      { vid; requests_raw; values_raw; nonce; quote; signature; avk; endorsement })

let encode_as_report (r : as_report) =
  Codec.encode (fun e ->
      Codec.Enc.str e r.vid;
      Codec.Enc.str e r.server;
      Property.encode e r.property;
      Report.encode e r.report;
      Codec.Enc.str e r.nonce;
      Codec.Enc.str e r.quote;
      Codec.Enc.str e r.signature)

let decode_as_report s =
  Codec.decode_opt s (fun d ->
      let vid = Codec.Dec.str d in
      let server = Codec.Dec.str d in
      let property = Property.decode d in
      let report = Report.decode d in
      let nonce = Codec.Dec.str d in
      let quote = Codec.Dec.str d in
      let signature = Codec.Dec.str d in
      { vid; server; property; report; nonce; quote; signature })

let encode_controller_report (r : controller_report) =
  Codec.encode (fun e ->
      Codec.Enc.str e r.vid;
      Property.encode e r.property;
      Report.encode e r.report;
      Codec.Enc.str e r.nonce;
      Codec.Enc.str e r.quote;
      Codec.Enc.str e r.signature)

let decode_controller_report s =
  Codec.decode_opt s (fun d ->
      let vid = Codec.Dec.str d in
      let property = Property.decode d in
      let report = Report.decode d in
      let nonce = Codec.Dec.str d in
      let quote = Codec.Dec.str d in
      let signature = Codec.Dec.str d in
      { vid; property; report; nonce; quote; signature })

(* --- Batch wire codecs ----------------------------------------------------- *)

let encode_batch_measure_request (r : batch_measure_request) =
  Codec.encode (fun e ->
      Codec.Enc.str e batch_measure_magic;
      Codec.Enc.list e
        (fun (vid, requests_raw) ->
          Codec.Enc.str e vid;
          Codec.Enc.str e requests_raw)
        r.bm_items;
      Codec.Enc.str e r.bm_nonce)

let decode_batch_measure_request s =
  Codec.decode_opt s (fun d ->
      let magic = Codec.Dec.str d in
      if not (String.equal magic batch_measure_magic) then
        raise (Codec.Error "not a batch measure request");
      let bm_items =
        Codec.Dec.list d (fun d ->
            let vid = Codec.Dec.str d in
            let requests_raw = Codec.Dec.str d in
            (vid, requests_raw))
      in
      let bm_nonce = Codec.Dec.str d in
      { bm_items; bm_nonce })

let encode_batch_item e (i : batch_item) =
  Codec.Enc.str e i.bi_vid;
  Codec.Enc.str e i.bi_requests_raw;
  Codec.Enc.str e i.bi_values_raw;
  Crypto.Merkle.encode e i.bi_proof

let decode_batch_item d =
  let bi_vid = Codec.Dec.str d in
  let bi_requests_raw = Codec.Dec.str d in
  let bi_values_raw = Codec.Dec.str d in
  let bi_proof = Crypto.Merkle.decode d in
  { bi_vid; bi_requests_raw; bi_values_raw; bi_proof }

let encode_batch_measure_response (r : batch_measure_response) =
  Codec.encode (fun e ->
      Codec.Enc.list e (encode_batch_item e) r.br_items;
      Codec.Enc.str e r.br_nonce;
      Codec.Enc.str e r.br_root;
      Codec.Enc.str e r.br_signature;
      Codec.Enc.str e r.br_avk;
      Codec.Enc.str e r.br_endorsement)

let decode_batch_measure_response s =
  Codec.decode_opt s (fun d ->
      let br_items = Codec.Dec.list d decode_batch_item in
      let br_nonce = Codec.Dec.str d in
      let br_root = Codec.Dec.str d in
      let br_signature = Codec.Dec.str d in
      let br_avk = Codec.Dec.str d in
      let br_endorsement = Codec.Dec.str d in
      { br_items; br_nonce; br_root; br_signature; br_avk; br_endorsement })

let encode_batch_as_request (r : batch_as_request) =
  Codec.encode (fun e ->
      Codec.Enc.str e batch_as_magic;
      Codec.Enc.str e r.ba_server;
      Codec.Enc.list e
        (fun (vid, property) ->
          Codec.Enc.str e vid;
          Property.encode e property)
        r.ba_items;
      Codec.Enc.str e r.ba_nonce)

let decode_batch_as_request s =
  Codec.decode_opt s (fun d ->
      let magic = Codec.Dec.str d in
      if not (String.equal magic batch_as_magic) then
        raise (Codec.Error "not a batch AS request");
      let ba_server = Codec.Dec.str d in
      let ba_items =
        Codec.Dec.list d (fun d ->
            let vid = Codec.Dec.str d in
            let property = Property.decode d in
            (vid, property))
      in
      let ba_nonce = Codec.Dec.str d in
      { ba_server; ba_items; ba_nonce })

(* --- Verification --------------------------------------------------------- *)

type verify_error =
  [ `Bad_signature | `Bad_quote | `Nonce_mismatch | `Vid_mismatch | `Bad_certificate ]

let pp_verify_error ppf = function
  | `Bad_signature -> Format.pp_print_string ppf "bad signature"
  | `Bad_quote -> Format.pp_print_string ppf "quote mismatch"
  | `Nonce_mismatch -> Format.pp_print_string ppf "nonce mismatch (replay?)"
  | `Vid_mismatch -> Format.pp_print_string ppf "VM id mismatch"
  | `Bad_certificate -> Format.pp_print_string ppf "bad attestation-key certificate"

let check cond err = if cond then Ok () else Error err

let ( let* ) = Result.bind

let verify_measure_response ~pca ~cert ~expected_vid ~expected_requests ~expected_nonce
    (r : measure_response) =
  match Crypto.Rsa.public_of_string r.avk with
  | None -> Error `Bad_certificate
  | Some avk ->
      let* () = check (Privacy_ca.check_certificate ~pca cert ~key:avk) `Bad_certificate in
      let* () =
        (* Memoized (as are the three verify sites below): a re-appraised
           quote — batch re-check, replayed retry, audited verdict — is a
           byte-identical triple, so only its first appraisal pays the
           exponentiation. *)
        check (Crypto.Rsa.verify_memo avk ~signature:r.signature (measure_response_payload r))
          `Bad_signature
      in
      let* () = check (String.equal r.vid expected_vid) `Vid_mismatch in
      let* () = check (String.equal r.requests_raw expected_requests) `Vid_mismatch in
      let* () = check (String.equal r.nonce expected_nonce) `Nonce_mismatch in
      check
        (String.equal r.quote
           (q3 ~vid:r.vid ~requests_raw:r.requests_raw ~values_raw:r.values_raw ~nonce:r.nonce))
        `Bad_quote

(* CVM variant: the operator's Privacy CA is out of the loop.  The
   endorsement field carries the two-link platform certificate chain and
   the verifier checks it against the hardware vendor's root key alone. *)
let verify_measure_response_cvm ~root ~expected_vid ~expected_requests ~expected_nonce
    (r : measure_response) =
  match Crypto.Rsa.public_of_string r.avk with
  | None -> Error `Bad_certificate
  | Some avk ->
      let* () =
        check
          (Tpm.Platform_root.verify_chain ~root ~endorsement:r.endorsement ~key:avk)
          `Bad_certificate
      in
      let* () =
        check (Crypto.Rsa.verify_memo avk ~signature:r.signature (measure_response_payload r))
          `Bad_signature
      in
      let* () = check (String.equal r.vid expected_vid) `Vid_mismatch in
      let* () = check (String.equal r.requests_raw expected_requests) `Vid_mismatch in
      let* () = check (String.equal r.nonce expected_nonce) `Nonce_mismatch in
      check
        (String.equal r.quote
           (q3 ~vid:r.vid ~requests_raw:r.requests_raw ~values_raw:r.values_raw ~nonce:r.nonce))
        `Bad_quote

(* Whole-batch envelope: the pCA certificate binds AVKs and the single
   session-key signature covers the Merkle root + nonce.  Verified once per
   batch, not once per report — that is the amortization. *)
let verify_batch_envelope ~pca ~cert ~expected_nonce (r : batch_measure_response) =
  match Crypto.Rsa.public_of_string r.br_avk with
  | None -> Error `Bad_certificate
  | Some avk ->
      let* () = check (Privacy_ca.check_certificate ~pca cert ~key:avk) `Bad_certificate in
      let* () =
        check
          (Crypto.Rsa.verify_memo avk ~signature:r.br_signature
             (Tpm.Trust_module.batch_quote_payload ~root:r.br_root ~nonce:r.br_nonce))
          `Bad_signature
      in
      check (String.equal r.br_nonce expected_nonce) `Nonce_mismatch

let verify_batch_envelope_cvm ~root ~expected_nonce (r : batch_measure_response) =
  match Crypto.Rsa.public_of_string r.br_avk with
  | None -> Error `Bad_certificate
  | Some avk ->
      let* () =
        check
          (Tpm.Platform_root.verify_chain ~root ~endorsement:r.br_endorsement ~key:avk)
          `Bad_certificate
      in
      let* () =
        check
          (Crypto.Rsa.verify_memo avk ~signature:r.br_signature
             (Tpm.Trust_module.batch_quote_payload ~root:r.br_root ~nonce:r.br_nonce))
          `Bad_signature
      in
      check (String.equal r.br_nonce expected_nonce) `Nonce_mismatch

(* Per-report check: the item's Q3 leaf must sit under the signed root, so a
   report keeps its individual integrity even though the signature is
   shared.  [expected_requests] pins rM to what the appraiser asked for. *)
let verify_batch_item ~root ~nonce ~expected_requests (i : batch_item) =
  let* () = check (String.equal i.bi_requests_raw expected_requests) `Vid_mismatch in
  let leaf =
    q3 ~vid:i.bi_vid ~requests_raw:i.bi_requests_raw ~values_raw:i.bi_values_raw ~nonce
  in
  check (Crypto.Merkle.verify ~root ~leaf i.bi_proof) `Bad_quote

let verify_as_report ~key ~expected_vid ~expected_server ~expected_property ~expected_nonce
    (r : as_report) =
  let* () =
    check (Crypto.Rsa.verify_memo key ~signature:r.signature (as_report_payload r)) `Bad_signature
  in
  let* () = check (String.equal r.vid expected_vid) `Vid_mismatch in
  let* () = check (String.equal r.server expected_server) `Vid_mismatch in
  let* () = check (Property.equal r.property expected_property) `Vid_mismatch in
  let* () = check (String.equal r.nonce expected_nonce) `Nonce_mismatch in
  check
    (String.equal r.quote
       (q2 ~vid:r.vid ~server:r.server ~property:r.property ~report:r.report ~nonce:r.nonce))
    `Bad_quote

let verify_controller_report ~key ~expected_vid ~expected_property ~expected_nonce
    (r : controller_report) =
  let* () =
    check
      (Crypto.Rsa.verify_memo key ~signature:r.signature (controller_report_payload r))
      `Bad_signature
  in
  let* () = check (String.equal r.vid expected_vid) `Vid_mismatch in
  let* () = check (Property.equal r.property expected_property) `Vid_mismatch in
  let* () = check (String.equal r.nonce expected_nonce) `Nonce_mismatch in
  check
    (String.equal r.quote (q1 ~vid:r.vid ~property:r.property ~report:r.report ~nonce:r.nonce))
    `Bad_quote
