(* Trust-backend tests: the BACKEND signature's three implementations.

   The pinned digests below were captured from the pre-backend tree, so
   they prove the refactor left the classic path byte-identical: the same
   key streams, the same endorsement bytes, the same AS wire reply. *)

open Core

let hex s = Crypto.Hexs.encode (Crypto.Sha256.digest s)

(* --- Classic backend: byte-identical to the pre-backend Trust_module ------ *)

(* SHA-256 over every byte the classic backend emits for a fixed seed:
   identity key, session key + endorsement, a session signature, a batch
   quote and an identity signature.  Captured before Backend existed. *)
let pinned_module_digest =
  "5ab33645ced906421f92c9551fbc882ed22da10b2475737a3e3e0f4ad4fb5fc1"

let test_classic_backend_bytes_pinned () =
  let b = Tpm.Backend.classic (Tpm.Trust_module.create ~key_bits:512 ~seed:"pin|7" ()) in
  let session = Tpm.Backend.begin_session b in
  let parts =
    [
      Crypto.Rsa.public_to_string (Tpm.Backend.identity_public b);
      Crypto.Rsa.public_to_string session.Tpm.Trust_module.public;
      session.Tpm.Trust_module.endorsement;
      Option.get (Tpm.Backend.sign_with_session b session "pin-payload");
      Option.get (Tpm.Backend.quote_batch b session ~root:"pin-root" ~nonce:"pin-nonce");
      Tpm.Backend.sign_identity b "pin-id-payload";
    ]
  in
  Alcotest.(check string) "classic backend bytes" pinned_module_digest
    (hex (String.concat "|" parts))

(* Whole-stack version: a default (all-classic) cloud's AS answers a
   strict-parse wire request with exactly the pre-backend reply bytes. *)
let pinned_as_reply_len = 366

let pinned_as_reply_digest =
  "9813f0863a751590512019e18bcea1fb79ba8223bda80dc5a127341232cb5faa"

let test_classic_as_reply_pinned () =
  let cloud = Cloud.build ~config:{ Cloud.default_config with key_bits = 512 } () in
  let ctl = Cloud.controller cloud in
  let vid =
    match
      Controller.launch ctl
        {
          Controller.owner = "pin";
          image = "cirros";
          flavor = "small";
          properties = Property.all;
          workload = "";
          pins = [];
        }
    with
    | Ok info -> info.Commands.vid
    | Error _ -> Alcotest.fail "launch failed"
  in
  let host =
    match Controller.vm_host ctl ~vid with
    | Some h -> h
    | None -> Alcotest.fail "no host"
  in
  let reply =
    Attestation_server.request_handler
      (Cloud.attestation_server cloud)
      ~peer:"cloud-controller"
      (Protocol.encode_as_request
         {
           Protocol.vid;
           server = host;
           property = Property.Startup_integrity;
           nonce = "pin-nonce-0123456";
         })
  in
  Alcotest.(check int) "reply length" pinned_as_reply_len (String.length reply);
  Alcotest.(check string) "reply digest" pinned_as_reply_digest (hex reply)

(* --- e-vTPM state machine -------------------------------------------------- *)

let test_evtpm_save_restore_roundtrip () =
  let dev = Tpm.Evtpm.create ~key_bits:512 ~seed:"evtpm-rt" () in
  Tpm.Evtpm.write_register dev 0 42;
  ignore (Tpm.Pcr.extend (Tpm.Evtpm.pcrs dev) 1 "boot-measurement" : string);
  let pcr1 = Tpm.Pcr.read (Tpm.Evtpm.pcrs dev) 1 in
  let state = Result.get_ok (Tpm.Evtpm.save_state dev) in
  (* Mutate after the snapshot, then restore: state rolls back. *)
  Tpm.Evtpm.write_register dev 0 99;
  ignore (Tpm.Pcr.extend (Tpm.Evtpm.pcrs dev) 1 "later" : string);
  Alcotest.(check bool) "fresh before restore" false (Tpm.Evtpm.stale dev);
  (match Tpm.Evtpm.restore_state dev state with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("restore failed: " ^ e));
  Alcotest.(check bool) "stale after restore" true (Tpm.Evtpm.stale dev);
  Alcotest.(check int) "register rolled back" 42 (Tpm.Evtpm.read_registers dev).(0);
  Alcotest.(check string) "pcr rolled back" pcr1 (Tpm.Pcr.read (Tpm.Evtpm.pcrs dev) 1);
  (* A stale module's endorsement carries the stale marker in the signed
     payload, so no verifier can certify it by accident. *)
  let session = Tpm.Evtpm.begin_session dev in
  let payload =
    Tpm.Evtpm.endorsement_payload
      ~epoch:(Tpm.Evtpm.binding_epoch dev)
      ~stale:true session.Tpm.Trust_module.public
  in
  Alcotest.(check bool) "stale endorsement verifies as stale" true
    (Crypto.Rsa.verify (Tpm.Evtpm.identity_public dev)
       ~signature:session.Tpm.Trust_module.endorsement payload)

let test_evtpm_geometry_mismatch_rejected () =
  let small = Tpm.Evtpm.create ~key_bits:512 ~num_registers:4 ~seed:"evtpm-a" () in
  let big = Tpm.Evtpm.create ~key_bits:512 ~num_registers:8 ~seed:"evtpm-b" () in
  let state = Result.get_ok (Tpm.Evtpm.save_state small) in
  (match Tpm.Evtpm.restore_state big state with
  | Ok () -> Alcotest.fail "geometry mismatch accepted"
  | Error _ -> ());
  Alcotest.(check bool) "failed restore leaves module fresh" false (Tpm.Evtpm.stale big);
  match Tpm.Evtpm.restore_state big "garbage" with
  | Ok () -> Alcotest.fail "garbage accepted"
  | Error _ -> ()

let test_evtpm_rebind_clears_stale () =
  let dev = Tpm.Evtpm.create ~key_bits:512 ~seed:"evtpm-rb" () in
  let state = Result.get_ok (Tpm.Evtpm.save_state dev) in
  Result.get_ok (Tpm.Evtpm.restore_state dev state);
  Alcotest.(check bool) "stale" true (Tpm.Evtpm.stale dev);
  Alcotest.(check int) "epoch 0" 0 (Tpm.Evtpm.binding_epoch dev);
  Alcotest.(check int) "epoch bumps" 1 (Tpm.Evtpm.rebind dev);
  Alcotest.(check bool) "fresh again" false (Tpm.Evtpm.stale dev)

let test_evtpm_clone_carries_identity () =
  (* Restoring A's state into B is the rollback/clone attack: B now quotes
     under A's identity — and is stale until an explicit re-registration. *)
  let a = Tpm.Evtpm.create ~key_bits:512 ~seed:"evtpm-src" () in
  let b = Tpm.Evtpm.create ~key_bits:512 ~seed:"evtpm-dst" () in
  let state = Result.get_ok (Tpm.Evtpm.save_state a) in
  Result.get_ok (Tpm.Evtpm.restore_state b state);
  Alcotest.(check bool) "clone is stale" true (Tpm.Evtpm.stale b);
  Alcotest.(check string) "clone took src identity"
    (Crypto.Rsa.public_to_string (Tpm.Evtpm.identity_public a))
    (Crypto.Rsa.public_to_string (Tpm.Evtpm.identity_public b))

(* --- End-to-end lifecycle on the cloud ------------------------------------- *)

let evtpm_cloud () =
  Cloud.build
    ~config:
      {
        Cloud.default_config with
        key_bits = 512;
        backend_of = (fun _ -> Tpm.Backend.Evtpm);
      }
    ()

let attest_status customer ~vid =
  match Cloud.Customer.attest customer ~vid ~property:Property.Startup_integrity with
  | Ok r -> r.Report.status
  | Error e -> Alcotest.failf "attest failed: %a" Cloud.Customer.pp_error e

let launch_monitored customer =
  match
    Cloud.Customer.launch customer ~image:"cirros" ~flavor:"small"
      ~properties:[ Property.Startup_integrity ] ()
  with
  | Ok info -> info.Commands.vid
  | Error e -> Alcotest.failf "launch failed: %a" Cloud.Customer.pp_error e

let test_migrate_without_rebind_detected () =
  let cloud = evtpm_cloud () in
  let customer = Cloud.Customer.create cloud ~name:"eve" in
  let vid = launch_monitored customer in
  let host = Option.get (Controller.vm_host (Cloud.controller cloud) ~vid) in
  Alcotest.(check bool) "fresh attest healthy" true (attest_status customer ~vid = Report.Healthy);
  (* The migrate-without-rebind attack: carry the vTPM state image over
     and keep serving quotes from it without re-registering. *)
  let state = Result.get_ok (Cloud.vtpm_save cloud ~server:host) in
  Result.get_ok (Cloud.vtpm_restore cloud ~server:host state);
  (match attest_status customer ~vid with
  | Report.Compromised reason ->
      Alcotest.(check bool) "stale-binding verdict" true
        (String.length reason >= 18 && String.sub reason 0 18 = "vtpm-stale-binding")
  | s -> Alcotest.failf "expected Compromised, got %a" Report.pp_status s);
  (* Re-registration with the Privacy CA is the only way back. *)
  let epoch = Result.get_ok (Cloud.vtpm_rebind cloud ~server:host) in
  Alcotest.(check int) "epoch advanced" 1 epoch;
  Alcotest.(check bool) "healthy after rebind" true
    (attest_status customer ~vid = Report.Healthy)

let test_vtpm_ops_reject_non_evtpm_hosts () =
  let cloud = Cloud.build ~config:{ Cloud.default_config with key_bits = 512 } () in
  (match Cloud.vtpm_save cloud ~server:"server-1" with
  | Ok _ -> Alcotest.fail "saved a classic TPM"
  | Error _ -> ());
  match Cloud.vtpm_rebind cloud ~server:"server-1" with
  | Ok _ -> Alcotest.fail "rebound a classic TPM"
  | Error _ -> ()

(* --- CVM hardware reports -------------------------------------------------- *)

let cvm_cloud () =
  Cloud.build
    ~config:
      {
        Cloud.default_config with
        key_bits = 512;
        backend_of = (fun _ -> Tpm.Backend.Cvm_report);
      }
    ()

let test_cvm_attests_against_vendor_root () =
  let cloud = cvm_cloud () in
  Alcotest.(check bool) "vendor root minted" true (Cloud.platform_root cloud <> None);
  let customer = Cloud.Customer.create cloud ~name:"carol" in
  let vid = launch_monitored customer in
  Alcotest.(check bool) "cvm attest healthy" true
    (attest_status customer ~vid = Report.Healthy)

let test_cvm_operator_convicted_on_rollback () =
  (* CVM hardware keeps the operator out of the measurement TCB, but the
     verdict distribution is still operator-run: an operator that shows an
     auditor an old signed head as latest is convicted from signatures
     alone. *)
  let cloud = cvm_cloud () in
  let logs = Cloud.enable_audit ~checkpoint_interval:0 cloud in
  let log = List.hd logs in
  let customer = Cloud.Customer.create cloud ~name:"carol" in
  let vid = launch_monitored customer in
  Alcotest.(check bool) "audited attest healthy" true
    (attest_status customer ~vid = Report.Healthy);
  let old_sth = Audit.Log.checkpoint log in
  Alcotest.(check bool) "second attest healthy" true
    (attest_status customer ~vid = Report.Healthy);
  ignore (Audit.Log.checkpoint log : Audit.Sth.t);
  let key_of id = if id = Audit.Log.log_id log then Some (Audit.Log.public_key log) else None in
  let auditor = Audit.Auditor.create ~name:"aud" ~key_of () in
  let view = Audit.View.of_log log in
  Audit.Auditor.observe auditor view;
  Alcotest.(check int) "honest view: no evidence" 0 (Audit.Auditor.evidence_count auditor);
  Audit.Auditor.observe auditor (Audit.View.stale view ~sth:old_sth);
  Alcotest.(check bool) "rollback convicted" true
    (List.exists
       (fun ev -> ev.Audit.Auditor.kind = Audit.Auditor.Rollback)
       (Audit.Auditor.evidence auditor))

(* --- Per-backend cost rows -------------------------------------------------- *)

let test_backend_cost_rows () =
  (* Classic selectors must keep returning the historical constants. *)
  Alcotest.(check int) "classic keygen"
    Costs.session_keygen
    (Costs.session_keygen_for Tpm.Backend.Classic);
  Alcotest.(check int) "classic quote" Costs.quote_sign
    (Costs.quote_sign_for Tpm.Backend.Classic);
  List.iter
    (fun kind ->
      Alcotest.(check bool)
        (Printf.sprintf "%s keygen positive" (Tpm.Backend.kind_to_string kind))
        true
        (Costs.session_keygen_for kind > 0 && Costs.quote_sign_for kind > 0))
    Tpm.Backend.all_kinds

let () =
  Alcotest.run "backends"
    [
      ( "classic-pinned",
        [
          Alcotest.test_case "module bytes pinned" `Quick test_classic_backend_bytes_pinned;
          Alcotest.test_case "AS wire reply pinned" `Quick test_classic_as_reply_pinned;
        ] );
      ( "evtpm",
        [
          Alcotest.test_case "save/restore round-trip" `Quick
            test_evtpm_save_restore_roundtrip;
          Alcotest.test_case "geometry mismatch rejected" `Quick
            test_evtpm_geometry_mismatch_rejected;
          Alcotest.test_case "rebind clears staleness" `Quick test_evtpm_rebind_clears_stale;
          Alcotest.test_case "clone carries identity" `Quick
            test_evtpm_clone_carries_identity;
        ] );
      ( "lifecycle",
        [
          Alcotest.test_case "migrate without rebind detected" `Quick
            test_migrate_without_rebind_detected;
          Alcotest.test_case "vtpm ops reject classic hosts" `Quick
            test_vtpm_ops_reject_non_evtpm_hosts;
        ] );
      ( "cvm",
        [
          Alcotest.test_case "attests against vendor root" `Quick
            test_cvm_attests_against_vendor_root;
          Alcotest.test_case "operator rollback convicted" `Quick
            test_cvm_operator_convicted_on_rollback;
        ] );
      ( "costs",
        [ Alcotest.test_case "per-backend cost rows" `Quick test_backend_cost_rows ] );
    ]
