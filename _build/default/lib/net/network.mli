(** Simulated network with a Dolev-Yao adversary position.

    Nodes register request handlers under string addresses; [call] performs
    a synchronous request/response exchange and returns both the reply and
    the simulated wire latency of the exchange (two legs of base latency +
    jitter + payload/bandwidth).

    The adversary sits on the wire: it sees every message (eavesdrop log)
    and may pass, rewrite or drop each one.  Because payloads are the real
    serialized bytes of the protocol, tampering is only detected if the
    protocol's cryptography detects it. *)

type t

type address = string

type direction = Request | Reply

type message = {
  seq : int;  (** global message counter *)
  src : address;
  dst : address;
  dir : direction;
  payload : string;
}

type action = Pass | Replace of string | Drop

type adversary = message -> action

type error = [ `Dropped | `No_such_host of address ]

val create :
  ?base_latency_us:int ->
  ?jitter_us:int ->
  ?bandwidth_mbps:float ->
  seed:int ->
  unit ->
  t
(** Defaults model the paper's testbed LAN: 200 us base latency, 50 us
    jitter, 1000 Mbps. *)

val register : t -> address -> (string -> string) -> unit
(** Install the request handler for an address (replacing any previous). *)

val unregister : t -> address -> unit

val call : t -> src:address -> dst:address -> string -> (string, error) result * Sim.Time.t
(** Send a request and wait for the reply.  The returned duration covers
    both wire legs (not handler compute time, which the caller accounts). *)

val transfer_time : t -> bytes:int -> Sim.Time.t
(** Wire time for a bulk transfer of [bytes] (used for VM migration). *)

val set_adversary : t -> adversary -> unit
val clear_adversary : t -> unit

val recorded : t -> message list
(** Every message the adversary position has observed, oldest first. *)

val message_count : t -> int
val bytes_sent : t -> int
