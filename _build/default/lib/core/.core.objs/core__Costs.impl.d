lib/core/costs.ml: Sim
