(** VMM Profile tool.

    Samples each domain's cumulative virtual run time on a fixed cadence
    (at VM-switch granularity in the paper — crucially {e without}
    intercepting the VM's execution, which is why runtime attestation shows
    no overhead in Figure 10).  A measurement query then reports the CPU
    time a VM consumed over a trailing window. *)

type t

val create : ?sample_period:Sim.Time.t -> ?history:int -> Hypervisor.Server.t -> t
(** Installs a recurring sampling event on the server's engine.
    Defaults: 100 ms period, 1200 samples of history (2 minutes). *)

val cpu_time : t -> vid:string -> window:Sim.Time.t -> Sim.Time.t option
(** Virtual run time consumed by the VM over the last [window]; clamps to
    available history.  [None] when the VM is not hosted here. *)

val cpu_usage : t -> vid:string -> window:Sim.Time.t -> (Sim.Time.t * Sim.Time.t) option
(** [(run, steal)] over the last [window]: virtual run time and
    runnable-but-not-scheduled time. *)

val sample_now : t -> unit
(** Force an immediate sample (used at measurement instants). *)
