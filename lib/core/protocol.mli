(** The attestation protocol messages of paper Figure 3, with their exact
    byte encodings, quote computations and signature payloads.

    Three nonces guard the three hops: the customer's [N1], the
    controller's [N2] and the Attestation Server's [N3].  Three quotes
    chain the content: [Q3 = H(Vid||rM||M||N3)] over the measurements,
    [Q2 = H(Vid||I||P||R||N2)] over the AS report and
    [Q1 = H(Vid||P||R||N1)] over the report the customer receives. *)

(** Customer -> Controller (inside channel Kx). *)
type attest_request = { vid : string; property : Property.t; nonce : string }

(** Controller -> Attestation Server (inside channel Ky); [server] is the
    host identifier I the controller resolved. *)
type as_request = { vid : string; server : string; property : Property.t; nonce : string }

(** Attestation Server -> Cloud Server (inside channel Kz); [requests_raw]
    is the encoded measurement list rM. *)
type measure_request = { vid : string; requests_raw : string; nonce : string }

(** Cloud Server -> Attestation Server: measurements, quote and the
    session-key signature, plus the key material the pCA certifies. *)
type measure_response = {
  vid : string;
  requests_raw : string;
  values_raw : string;  (** encoded measurement values M *)
  nonce : string;  (** echo of N3 *)
  quote : string;  (** Q3 *)
  signature : string;  (** [[...]]ASKs *)
  avk : string;  (** AVKs, encoded public key *)
  endorsement : string;  (** [[AVKs]]SKs for the privacy CA *)
}

(** Attestation Server -> Controller. *)
type as_report = {
  vid : string;
  server : string;
  property : Property.t;
  report : Report.t;
  nonce : string;  (** echo of N2 *)
  quote : string;  (** Q2 *)
  signature : string;  (** [[...]]SKa *)
}

(** Controller -> Customer. *)
type controller_report = {
  vid : string;
  property : Property.t;
  report : Report.t;
  nonce : string;  (** echo of N1 *)
  quote : string;  (** Q1 *)
  signature : string;  (** [[...]]SKc *)
}

(** {2 Batched attestation}

    One Trust-Module quote covers a whole batch: the cloud server builds a
    Merkle tree over the per-report [Q3] quotes and signs only the root
    (with a single session key), so the dominant RSA costs are paid once
    per batch.  Each report still carries an O(log n) inclusion proof, so
    the appraiser derives {e individual} verdicts without trusting the
    aggregation — a tampered report fails its own proof while the rest of
    the batch stands. *)

(** Attestation Server -> Cloud Server: measure many VMs under one quote. *)
type batch_measure_request = {
  bm_items : (string * string) list;  (** (vid, requests_raw) per report *)
  bm_nonce : string;  (** N3, shared by the whole batch *)
}

type batch_item = {
  bi_vid : string;
  bi_requests_raw : string;
  bi_values_raw : string;
  bi_proof : Crypto.Merkle.proof;  (** inclusion of this item's Q3 leaf *)
}

(** Cloud Server -> Attestation Server. *)
type batch_measure_response = {
  br_items : batch_item list;
  br_nonce : string;  (** echo of N3 *)
  br_root : string;  (** Merkle root over the items' Q3 quotes *)
  br_signature : string;  (** [root||N3]ASKs — one signature for the batch *)
  br_avk : string;
  br_endorsement : string;
}

(** Controller -> Attestation Server: attest many VMs of one cloud server. *)
type batch_as_request = {
  ba_server : string;
  ba_items : (string * Property.t) list;
  ba_nonce : string;  (** N2, shared by the whole batch *)
}

val encode_batch_measure_request : batch_measure_request -> string
val decode_batch_measure_request : string -> batch_measure_request option
val encode_batch_measure_response : batch_measure_response -> string
val decode_batch_measure_response : string -> batch_measure_response option
val encode_batch_as_request : batch_as_request -> string
val decode_batch_as_request : string -> batch_as_request option

(** {2 Quotes} *)

val q3 : vid:string -> requests_raw:string -> values_raw:string -> nonce:string -> string
val q2 : vid:string -> server:string -> property:Property.t -> report:Report.t -> nonce:string -> string
val q1 : vid:string -> property:Property.t -> report:Report.t -> nonce:string -> string

(** {2 Signature payloads (everything but the signature field)} *)

val measure_response_payload : measure_response -> string
val as_report_payload : as_report -> string
val controller_report_payload : controller_report -> string

(** {2 Wire codecs} *)

val encode_attest_request : attest_request -> string
val decode_attest_request : string -> attest_request option
val encode_as_request : as_request -> string
val decode_as_request : string -> as_request option
val encode_measure_request : measure_request -> string
val decode_measure_request : string -> measure_request option
val encode_measure_response : measure_response -> string
val decode_measure_response : string -> measure_response option
val encode_as_report : as_report -> string
val decode_as_report : string -> as_report option
val encode_controller_report : controller_report -> string
val decode_controller_report : string -> controller_report option

(** {2 Verification} *)

type verify_error =
  [ `Bad_signature | `Bad_quote | `Nonce_mismatch | `Vid_mismatch | `Bad_certificate ]

val pp_verify_error : Format.formatter -> verify_error -> unit

val verify_measure_response :
  pca:Crypto.Rsa.public ->
  cert:Net.Ca.cert ->
  expected_vid:string ->
  expected_requests:string ->
  expected_nonce:string ->
  measure_response ->
  (unit, verify_error) result
(** The full Attestation Server check: pCA certificate binds [avk], the
    signature verifies under [avk], the quote recomputes, and vid, rM and
    N3 all match the outstanding request. *)

val verify_measure_response_cvm :
  root:Crypto.Rsa.public ->
  expected_vid:string ->
  expected_requests:string ->
  expected_nonce:string ->
  measure_response ->
  (unit, verify_error) result
(** {!verify_measure_response} for a [Cvm_report] backend: the Privacy CA
    is replaced by the hardware vendor's [root] key, against which the
    two-link platform chain in the endorsement field is checked.  The
    cloud operator is outside this trust path entirely. *)

val verify_as_report :
  key:Crypto.Rsa.public ->
  expected_vid:string ->
  expected_server:string ->
  expected_property:Property.t ->
  expected_nonce:string ->
  as_report ->
  (unit, verify_error) result

val verify_controller_report :
  key:Crypto.Rsa.public ->
  expected_vid:string ->
  expected_property:Property.t ->
  expected_nonce:string ->
  controller_report ->
  (unit, verify_error) result

val verify_batch_envelope :
  pca:Crypto.Rsa.public ->
  cert:Net.Ca.cert ->
  expected_nonce:string ->
  batch_measure_response ->
  (unit, verify_error) result
(** Whole-batch check, done once: pCA certificate binds [br_avk], the
    session-key signature covers root + nonce, N3 matches. *)

val verify_batch_envelope_cvm :
  root:Crypto.Rsa.public ->
  expected_nonce:string ->
  batch_measure_response ->
  (unit, verify_error) result
(** {!verify_batch_envelope} against the hardware vendor root instead of
    the Privacy CA. *)

val verify_batch_item :
  root:string ->
  nonce:string ->
  expected_requests:string ->
  batch_item ->
  (unit, verify_error) result
(** Per-report check: rM matches the request and the item's recomputed Q3
    leaf is included under the signed [root]. *)
