type bug =
  | No_bug
  | Skip_invalidate_on_migrate
  | Skip_invalidate_on_resume
  | Rebind_on_restore
      (* management plane silently re-registers restored vTPM state with the
         Privacy CA, laundering a migrate-without-rebind into fresh Healthy
         verdicts — the vtpm-stale-binding oracle must catch it *)
  | Lazy_monitor
      (* continuous monitor only wakes at op boundaries instead of chunking
         its catch-up through Advance, so a long quiet stretch leaves every
         verdict stale — the monitor-freshness oracle must catch it *)

type outcome = {
  scenario : Op.scenario;
  observations : Oracle.op_obs list;
  violations : Oracle.violation list;
  digest : string;
  vms_launched : int;
  attests_run : int;
}

let n_images = Array.length Op.images
let n_workloads = Array.length Op.workloads
let n_properties = Array.length Op.properties

(* Map an abstract fault to a network adversary.  [Lossy]'s coin flips are
   seeded from (scenario seed, op index) so the same scenario always builds
   the same adversary — determinism end to end. *)
let adversary ~seed ~index = function
  | Op.Drop_nth n -> Net.Fault.drop_nth (max 1 n)
  | Op.Garble_nth n -> Net.Fault.garble_nth (max 1 n)
  | Op.Lossy (drop, garble) ->
      Net.Fault.lossy
        ~garble_p:(float_of_int (max 0 garble) /. 100.)
        ~drop_p:(float_of_int (max 0 drop) /. 100.)
        ~seed:(seed lxor ((index + 1) * 7919))
        ()
  | Op.Blackout -> Net.Fault.blackout ()

let run ?(bug = No_bug) (scenario : Op.scenario) =
  let config =
    {
      Core.Cloud.default_config with
      seed = scenario.Op.seed;
      key_bits = 512;
      num_attestation_servers = 2;
      (* Heterogeneous trust plane: every scenario exercises all three
         backends (the scheduler spreads VMs across the hosts). *)
      backend_of =
        (fun i ->
          [| Tpm.Backend.Classic; Tpm.Backend.Evtpm; Tpm.Backend.Cvm_report |].(i mod 3));
    }
  in
  let cloud = Core.Cloud.build ~config () in
  let ctl = Core.Cloud.controller cloud in
  let net = Core.Cloud.net cloud in
  let cache = Core.Controller.verdict_cache ctl in
  let drbg = Crypto.Drbg.create ~seed:("fuzz|" ^ string_of_int scenario.Op.seed) in
  let oracle = Oracle.create ~controller_key:(Core.Controller.public_key ctl) () in
  (* VM slot table: every successfully launched vid, in launch order.
     Slots stay stable forever (terminated VMs keep their index), so a
     shrunk scenario references the same VMs as the original. *)
  let vids = ref [||] in
  let resolve slot =
    let n = Array.length !vids in
    if n = 0 then None else Some !vids.(slot mod n)
  in
  (* Audit plane: two gossiping auditors polling every AS log directly
     (auditors are off-path observers; the network adversary cannot touch
     them).  One-way switch, matching [Cloud.enable_audit]. *)
  let auditors = ref None in
  let logs = ref [] in
  let audit_poll () =
    match !auditors with
    | None -> ()
    | Some (a, b) ->
        List.iter
          (fun l ->
            let v = Audit.View.of_log l in
            Audit.Auditor.observe a v;
            Audit.Auditor.observe b v)
          !logs;
        Audit.Auditor.exchange a b
  in
  let audit_evidence () =
    match !auditors with
    | None -> 0
    | Some (a, b) -> Audit.Auditor.evidence_count a + Audit.Auditor.evidence_count b
  in
  let enable_audit () =
    if !auditors = None then begin
      let ls = Core.Cloud.enable_audit cloud in
      logs := ls;
      let key_of id =
        List.find_opt (fun l -> Audit.Log.log_id l = id) ls
        |> Option.map Audit.Log.public_key
      in
      let clock () = Core.Cloud.now cloud in
      let make name = Audit.Auditor.create ~name ~key_of ~clock () in
      auditors := Some (make "fuzz-auditor-a", make "fuzz-auditor-b")
    end
  in
  (* Planted-bug machinery: snapshot a VM's cached verdicts before a
     lifecycle transition and put them back afterwards, emulating a
     controller that forgot to invalidate on that transition. *)
  let snapshot vid =
    List.filter_map
      (fun p -> Core.Verdict_cache.find cache ~vid ~property:p)
      (Array.to_list Op.properties)
  in
  let restore reports =
    List.iter (fun r -> ignore (Core.Verdict_cache.store cache r : bool)) reports
  in
  let attest_one vid pidx =
    let property = Op.properties.(pidx mod n_properties) in
    let nonce = Crypto.Drbg.nonce drbg in
    let a_host = Core.Controller.vm_host ctl ~vid in
    let result, ledger =
      Core.Controller.attest ctl { Core.Protocol.vid; property; nonce }
    in
    ( { Oracle.a_vid = vid; a_property = property; a_nonce = nonce; a_result = result; a_host },
      ledger )
  in
  let observations = ref [] in
  let attests_run = ref 0 in
  let vms_launched = ref 0 in
  (* Whether a network adversary is currently installed; the protocol
     estimate oracle only trusts its envelope on adversary-free runs. *)
  let fault_active = ref false in
  (* Continuous monitor: while armed ([mon_period] > 0 ms), every tracked
     VM — launched monitored, alive, not suspended — is re-attested for
     Runtime_integrity whenever its last probe is older than the period.
     Catch-up runs after every op and, crucially, inside Advance in
     period-sized chunks, so freshness survives long quiet stretches. *)
  let mon_period = ref 0 in
  let mon_last : (string, Sim.Time.t) Hashtbl.t = Hashtbl.create 16 in
  let monitored_set : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let suspended : (string, unit) Hashtbl.t = Hashtbl.create 4 in
  let dead : (string, unit) Hashtbl.t = Hashtbl.create 4 in
  let mon_tracked vid =
    Hashtbl.mem monitored_set vid
    && (not (Hashtbl.mem suspended vid))
    && not (Hashtbl.mem dead vid)
  in
  (* Probes of the current op, oldest first once reversed into the obs. *)
  let probes = ref [] in
  let mon_probe vid =
    let mp_started = Core.Cloud.now cloud in
    Hashtbl.replace mon_last vid mp_started;
    let property = Core.Property.Runtime_integrity in
    let nonce = Crypto.Drbg.nonce drbg in
    let a_host = Core.Controller.vm_host ctl ~vid in
    let result, _ledger =
      Core.Controller.attest ctl { Core.Protocol.vid; property; nonce }
    in
    incr attests_run;
    probes :=
      {
        Oracle.mp_vid = vid;
        mp_started;
        mp_attest =
          { Oracle.a_vid = vid; a_property = property; a_nonce = nonce; a_result = result; a_host };
      }
      :: !probes
  in
  let catch_up () =
    if !mon_period > 0 then
      Array.iter
        (fun vid ->
          if mon_tracked vid then
            let due =
              match Hashtbl.find_opt mon_last vid with
              | Some last -> Core.Cloud.now cloud - last >= Sim.Time.ms !mon_period
              | None -> true
            in
            if due then mon_probe vid)
        !vids
  in
  let sha = Crypto.Sha256.init () in
  List.iteri
    (fun index op ->
      (* Mandatory 1 ms pre-advance: anything produced by an earlier op is
         now strictly older than [started_at], which is how the oracles
         recognise a cache-served verdict (see oracle.mli). *)
      Core.Cloud.run_for cloud (Sim.Time.ms 1);
      let started_at = Core.Cloud.now cloud in
      let attests = ref [] in
      let target = ref None in
      let lifecycle_ok = ref true in
      let launched = ref None in
      let ledger_entries = ref [] in
      let vtpm_stale = ref [] in
      let vtpm_rebound = ref [] in
      let protocol = ref None in
      let storm = ref [] in
      probes := [];
      (* Shared by Vtpm_cycle and Vtpm_clone: restore [state] into [host]'s
         vTPM; under the planted bug the restore is silently laundered into
         a fresh binding, which the stale-binding oracle must flag. *)
      let restore_into host state =
        match Core.Cloud.vtpm_restore cloud ~server:host state with
        | Error _ -> lifecycle_ok := false
        | Ok () ->
            (* The oracle sees the restore either way; the bug's rebind is
               the management plane acting behind its back. *)
            vtpm_stale := host :: !vtpm_stale;
            if bug = Rebind_on_restore then
              ignore (Core.Cloud.vtpm_rebind cloud ~server:host : (int, string) result)
      in
      (match op with
      | Op.Launch { image; monitored; workload } -> (
          let req =
            {
              Core.Controller.owner = "fuzz";
              image = Op.images.(image mod n_images);
              flavor = "small";
              properties = (if monitored then Core.Property.all else []);
              workload = Op.workloads.(workload mod n_workloads);
              pins = [];
            }
          in
          match Core.Controller.launch ctl req with
          | Ok info ->
              let vid = info.Core.Commands.vid in
              vids := Array.append !vids [| vid |];
              incr vms_launched;
              launched := Some (vid, image mod n_images, monitored);
              if monitored then begin
                Hashtbl.replace monitored_set vid ();
                if !mon_period > 0 then
                  Hashtbl.replace mon_last vid (Core.Cloud.now cloud)
              end
          | Error _ -> lifecycle_ok := false)
      | Op.Terminate s -> (
          match resolve s with
          | None -> ()
          | Some vid ->
              target := Some vid;
              let ok =
                Result.is_ok (Core.Controller.respond ctl Core.Controller.Terminate_vm ~vid)
              in
              lifecycle_ok := ok;
              if ok then Hashtbl.replace dead vid ())
      | Op.Suspend s -> (
          match resolve s with
          | None -> ()
          | Some vid ->
              target := Some vid;
              let ok =
                Result.is_ok (Core.Controller.respond ctl Core.Controller.Suspend_vm ~vid)
              in
              lifecycle_ok := ok;
              if ok then Hashtbl.replace suspended vid ())
      | Op.Resume s -> (
          match resolve s with
          | None -> ()
          | Some vid ->
              target := Some vid;
              let snap = if bug = Skip_invalidate_on_resume then snapshot vid else [] in
              let ok = Result.is_ok (Core.Controller.resume ctl ~vid) in
              lifecycle_ok := ok;
              if ok then begin
                restore snap;
                Hashtbl.remove suspended vid;
                (* freshness restarts: the VM was unprobeable while out *)
                if !mon_period > 0 then
                  Hashtbl.replace mon_last vid (Core.Cloud.now cloud)
              end)
      | Op.Migrate s -> (
          match resolve s with
          | None -> ()
          | Some vid ->
              target := Some vid;
              let snap = if bug = Skip_invalidate_on_migrate then snapshot vid else [] in
              let ok =
                Result.is_ok (Core.Controller.respond ctl Core.Controller.Migrate_vm ~vid)
              in
              lifecycle_ok := ok;
              if ok then restore snap)
      | Op.Attest (s, p) -> (
          match resolve s with
          | None -> ()
          | Some vid ->
              let a, ledger = attest_one vid p in
              attests := [ a ];
              ledger_entries := Core.Ledger.entries ledger;
              incr attests_run)
      | Op.Attest_many pairs ->
          let reqs =
            List.filter_map
              (fun (s, p) ->
                Option.map
                  (fun vid ->
                    {
                      Core.Protocol.vid;
                      property = Op.properties.(p mod n_properties);
                      nonce = Crypto.Drbg.nonce drbg;
                    })
                  (resolve s))
              pairs
          in
          if reqs <> [] then begin
            let results, ledger = Core.Controller.attest_many ctl reqs in
            attests :=
              List.map
                (fun ((req : Core.Protocol.attest_request), res) ->
                  {
                    Oracle.a_vid = req.Core.Protocol.vid;
                    a_property = req.Core.Protocol.property;
                    a_nonce = req.Core.Protocol.nonce;
                    a_result = res;
                    a_host = Core.Controller.vm_host ctl ~vid:req.Core.Protocol.vid;
                  })
                results;
            attests_run := !attests_run + List.length results;
            ledger_entries := Core.Ledger.entries ledger
          end
      | Op.Set_cache_ttl ms ->
          Core.Controller.set_verdict_cache_ttl ctl (Sim.Time.ms (max 0 ms))
      | Op.Set_batching b -> Core.Controller.set_batching ctl b
      | Op.Enable_audit -> enable_audit ()
      | Op.Set_fault f ->
          fault_active := true;
          Net.Network.set_adversary net (adversary ~seed:scenario.Op.seed ~index f)
      | Op.Clear_fault ->
          fault_active := false;
          Net.Network.clear_adversary net
      | Op.Advance ms ->
          let total = Sim.Time.ms ms in
          if !mon_period > 0 && bug <> Lazy_monitor then begin
            (* chunk the advance at the monitor period so probes fire when
               due rather than piling up at the far end *)
            let chunk = Sim.Time.ms !mon_period in
            let rec go remaining =
              if remaining > 0 then begin
                Core.Cloud.run_for cloud (min remaining chunk);
                catch_up ();
                go (remaining - chunk)
              end
            in
            go total
          end
          else Core.Cloud.run_for cloud total
      | Op.Infect s -> (
          match resolve s with
          | None -> ()
          | Some vid -> (
              target := Some vid;
              let infected =
                match Core.Controller.vm_host ctl ~vid with
                | None -> false
                | Some host -> (
                    match Core.Cloud.find_server cloud host with
                    | None -> false
                    | Some srv -> (
                        match Hypervisor.Server.find srv vid with
                        | None -> false
                        | Some inst ->
                            ignore
                              (Attacks.Malware.infect_hidden inst.Hypervisor.Server.vm ()
                                : Hypervisor.Guest_os.process);
                            true))
              in
              lifecycle_ok := infected))
      | Op.Corrupt_image i ->
          ignore (Core.Controller.corrupt_image ctl Op.images.(i mod n_images) : bool)
      | Op.Vtpm_cycle s -> (
          match resolve s with
          | None -> ()
          | Some vid -> (
              target := Some vid;
              match Core.Controller.vm_host ctl ~vid with
              | None -> lifecycle_ok := false
              | Some host -> (
                  match Core.Cloud.vtpm_save cloud ~server:host with
                  | Error _ -> lifecycle_ok := false (* host is not an e-vTPM *)
                  | Ok state -> restore_into host state)))
      | Op.Vtpm_clone (src, dst) -> (
          match (resolve src, resolve dst) with
          | Some src_vid, Some dst_vid -> (
              target := Some dst_vid;
              match
                ( Core.Controller.vm_host ctl ~vid:src_vid,
                  Core.Controller.vm_host ctl ~vid:dst_vid )
              with
              | Some src_host, Some dst_host -> (
                  match Core.Cloud.vtpm_save cloud ~server:src_host with
                  | Error _ -> lifecycle_ok := false
                  | Ok state -> restore_into dst_host state)
              | _ -> lifecycle_ok := false)
          | _ -> ())
      | Op.Vtpm_rebind s -> (
          match resolve s with
          | None -> ()
          | Some vid -> (
              target := Some vid;
              match Core.Controller.vm_host ctl ~vid with
              | None -> lifecycle_ok := false
              | Some host -> (
                  match Core.Cloud.vtpm_rebind cloud ~server:host with
                  | Error _ -> lifecycle_ok := false
                  | Ok _epoch -> vtpm_rebound := host :: !vtpm_rebound)))
      | Op.Protocol_term phrase ->
          (* Before the first launch there is no slot table; the phrase is a
             no-op rather than a rejection (slot 0 is not ill-typed, it just
             has nothing to name yet). *)
          if Array.length !vids > 0 then begin
            let msgs0 = Net.Network.message_count net in
            let drops0 = Net.Network.drop_count net in
            match Copland.Interp.run ~drbg cloud ~vids:!vids phrase with
            | Error _ ->
                protocol :=
                  Some
                    {
                      Oracle.p_phrase = phrase;
                      p_accepted = false;
                      p_status = "-";
                      p_leaves = 0;
                      p_all_ok = true;
                      p_messages = Net.Network.message_count net - msgs0;
                      p_drops = Net.Network.drop_count net - drops0;
                      p_compute = 0;
                      p_estimate = None;
                      p_faulty = !fault_active;
                    }
            | Ok outcome ->
                let leaves = outcome.Copland.Interp.leaves in
                attests :=
                  List.map
                    (fun (l : Copland.Interp.leaf_result) ->
                      {
                        Oracle.a_vid = l.Copland.Interp.vid;
                        a_property = l.Copland.Interp.property;
                        a_nonce = l.Copland.Interp.nonce;
                        a_result = l.Copland.Interp.report;
                        a_host = Core.Controller.vm_host ctl ~vid:l.Copland.Interp.vid;
                      })
                    leaves;
                attests_run := !attests_run + List.length leaves;
                let ledger = outcome.Copland.Interp.ledger in
                ledger_entries := Core.Ledger.entries ledger;
                let compute =
                  Core.Ledger.total ledger
                  - Core.Ledger.of_label ledger "network"
                  - Core.Ledger.of_label ledger "as:network"
                in
                let env = Copland.Env.of_cloud cloud ~vids:!vids in
                protocol :=
                  Some
                    {
                      Oracle.p_phrase = phrase;
                      p_accepted = true;
                      p_status =
                        (match outcome.Copland.Interp.status with
                        | Core.Report.Healthy -> "H"
                        | Core.Report.Compromised _ -> "C"
                        | Core.Report.Unknown _ -> "U");
                      p_leaves = List.length leaves;
                      p_all_ok =
                        List.for_all
                          (fun (l : Copland.Interp.leaf_result) ->
                            Result.is_ok l.Copland.Interp.report)
                          leaves;
                      p_messages = Net.Network.message_count net - msgs0;
                      p_drops = Net.Network.drop_count net - drops0;
                      p_compute = compute;
                      p_estimate = Some (Copland.Estimate.of_phrase env phrase);
                      p_faulty = !fault_active;
                    }
          end
      | Op.Monitor_enable ms ->
          let ms = max 0 ms in
          if ms > 0 then begin
            (* arming (re)baselines every tracked VM at "now": the operator
               asks for freshness from this moment on *)
            if !mon_period = 0 then
              Array.iter
                (fun vid ->
                  if mon_tracked vid then
                    Hashtbl.replace mon_last vid (Core.Cloud.now cloud))
                !vids;
            mon_period := ms
          end
          else mon_period := 0
      | Op.Monitor_period ms -> if !mon_period > 0 && ms > 0 then mon_period := ms
      | Op.Monitor_storm s -> (
          match resolve s with
          | None -> ()
          | Some vid0 -> (
              target := Some vid0;
              match Core.Controller.vm_host ctl ~vid:vid0 with
              | None -> lifecycle_ok := false
              | Some host -> (
                  match Core.Cloud.find_server cloud host with
                  | None -> lifecycle_ok := false
                  | Some srv ->
                      (* correlated incident: every VM sharing vid0's host
                         is compromised at once *)
                      Array.iter
                        (fun vid ->
                          match Hypervisor.Server.find srv vid with
                          | None -> ()
                          | Some inst ->
                              ignore
                                (Attacks.Malware.infect_hidden inst.Hypervisor.Server.vm ()
                                  : Hypervisor.Guest_os.process);
                              storm := vid :: !storm)
                        !vids;
                      storm := List.rev !storm;
                      lifecycle_ok := !storm <> []))));
      (* Op-boundary catch-up: whatever the op just did (launch, resume,
         storm, plain time passing), overdue probes fire before the obs is
         sealed, so the oracle sees them attributed to this op. *)
      catch_up ();
      audit_poll ();
      let obs =
        {
          Oracle.index;
          op;
          started_at;
          finished_at = Core.Cloud.now cloud;
          attests = !attests;
          target = !target;
          lifecycle_ok = !lifecycle_ok;
          launched = !launched;
          ledger = !ledger_entries;
          net_messages = Net.Network.message_count net;
          net_bytes = Net.Network.bytes_sent net;
          net_drops = Net.Network.drop_count net;
          audit_evidence = audit_evidence ();
          vtpm_stale = List.rev !vtpm_stale;
          vtpm_rebound = List.rev !vtpm_rebound;
          protocol = !protocol;
          monitor =
            (let is_mop =
               match op with
               | Op.Monitor_enable _ | Op.Monitor_period _ | Op.Monitor_storm _ -> true
               | _ -> false
             in
             if !mon_period > 0 || is_mop then
               Some
                 {
                   Oracle.m_period = !mon_period;
                   m_probes = List.rev !probes;
                   m_storm = !storm;
                 }
             else None);
        }
      in
      ignore (Oracle.observe oracle obs : Oracle.violation list);
      Crypto.Sha256.update sha (Oracle.digest_of_obs obs);
      Crypto.Sha256.update sha "\n";
      observations := obs :: !observations)
    scenario.Op.ops;
  {
    scenario;
    observations = List.rev !observations;
    violations = Oracle.all oracle;
    digest = Crypto.Hexs.encode (Crypto.Sha256.finalize sha);
    vms_launched = !vms_launched;
    attests_run = !attests_run;
  }
