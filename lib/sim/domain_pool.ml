type t = {
  slots : int;
  mutex : Mutex.t;
  start : Condition.t;
  finished : Condition.t;
  mutable job : (int -> unit) option;
  mutable generation : int;
  mutable remaining : int;
  mutable failure : exn option;
  mutable stop : bool;
  mutable workers : unit Domain.t array;
}

let worker t slot =
  let seen = ref 0 in
  let rec loop () =
    Mutex.lock t.mutex;
    while (not t.stop) && t.generation = !seen do
      Condition.wait t.start t.mutex
    done;
    if t.stop then Mutex.unlock t.mutex
    else begin
      seen := t.generation;
      let job = Option.get t.job in
      Mutex.unlock t.mutex;
      let outcome = try Ok (job slot) with e -> Error e in
      Mutex.lock t.mutex;
      (match outcome with
      | Ok () -> ()
      | Error e -> if t.failure = None then t.failure <- Some e);
      t.remaining <- t.remaining - 1;
      if t.remaining = 0 then Condition.signal t.finished;
      Mutex.unlock t.mutex;
      loop ()
    end
  in
  loop ()

let create ~slots =
  if slots <= 0 then invalid_arg "Domain_pool.create: slots must be positive";
  let t =
    {
      slots;
      mutex = Mutex.create ();
      start = Condition.create ();
      finished = Condition.create ();
      job = None;
      generation = 0;
      remaining = 0;
      failure = None;
      stop = false;
      workers = [||];
    }
  in
  (* Slot 0 always runs on the caller's domain, so a 1-slot pool spawns
     nothing and [run] degenerates to a plain call — the domains=1 baseline
     executes exactly the code a sequential driver would. *)
  t.workers <-
    Array.init (slots - 1) (fun i -> Domain.spawn (fun () -> worker t (i + 1)));
  t

let slots t = t.slots

let run t f =
  if t.slots = 1 then f 0
  else begin
    Mutex.lock t.mutex;
    t.job <- Some f;
    t.failure <- None;
    t.generation <- t.generation + 1;
    t.remaining <- t.slots - 1;
    Condition.broadcast t.start;
    Mutex.unlock t.mutex;
    let own = try Ok (f 0) with e -> Error e in
    Mutex.lock t.mutex;
    while t.remaining > 0 do
      Condition.wait t.finished t.mutex
    done;
    let worker_failure = t.failure in
    t.job <- None;
    Mutex.unlock t.mutex;
    match (own, worker_failure) with
    | Error e, _ -> raise e
    | Ok (), Some e -> raise e
    | Ok (), None -> ()
  end

let shutdown t =
  if t.slots > 1 then begin
    Mutex.lock t.mutex;
    t.stop <- true;
    Condition.broadcast t.start;
    Mutex.unlock t.mutex;
    Array.iter Domain.join t.workers
  end
