lib/attacks/cache_channel.ml: Hypervisor List Sim
