(** Attestation reports — the "R" the customer finally receives. *)

type status =
  | Healthy
  | Compromised of string  (** reason, e.g. "bimodal CPU-interval distribution" *)
  | Unknown of string  (** could not be determined, e.g. too few samples *)

type t = {
  vid : string;
  property : Property.t;
  status : status;
  evidence : string;  (** short human-readable summary of the measurements *)
  produced_at : Sim.Time.t;
}

val is_healthy : t -> bool
val pp_status : Format.formatter -> status -> unit
val pp : Format.formatter -> t -> unit

val encode : Wire.Codec.Enc.t -> t -> unit
val decode : Wire.Codec.Dec.t -> t
