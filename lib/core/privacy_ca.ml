type t = {
  ca : Net.Ca.t;
  servers : (string, Crypto.Rsa.public) Hashtbl.t;
  (* Migratable vTPMs enroll with an explicit binding epoch; the CA only
     certifies session keys endorsed at the currently registered epoch with
     a non-stale marker, which is what forces a restored vTPM through
     re-registration before its quotes verify again. *)
  evtpms : (string, Crypto.Rsa.public * int ref) Hashtbl.t;
}

let anonymous_subject = "cloudmonatt-attestation-key"

let create ~seed ?(bits = 1024) () =
  {
    ca = Net.Ca.create ~seed ~bits ~name:"privacy-ca" ();
    servers = Hashtbl.create 8;
    evtpms = Hashtbl.create 8;
  }

let public t = Net.Ca.public t.ca

let enroll_server t ~name key = Hashtbl.replace t.servers name key

let enroll_evtpm t ~name key ~epoch = Hashtbl.replace t.evtpms name (key, ref epoch)

let rebind_evtpm t ~name key ~epoch = Hashtbl.replace t.evtpms name (key, ref epoch)

let evtpm_epoch t ~name =
  Option.map (fun (_, e) -> !e) (Hashtbl.find_opt t.evtpms name)

let enrolled t = List.sort compare (Hashtbl.fold (fun n _ acc -> n :: acc) t.servers [])

let certify_attestation_key t ~key ~endorsement =
  let payload = Tpm.Trust_module.endorsement_payload key in
  let endorsed =
    Hashtbl.fold
      (* Memoized: a re-certification of the same attestation key retries
         the same (endorsement, payload) pair against the same server keys,
         including the misses against non-matching servers. *)
      (fun _ vks acc -> acc || Crypto.Rsa.verify_memo vks ~signature:endorsement payload)
      t.servers false
  in
  if endorsed then Ok (Net.Ca.issue t.ca ~subject:anonymous_subject key)
  else Error `Unknown_server

let certify_evtpm_key t ~key ~endorsement =
  let check vk ~epoch ~stale =
    Crypto.Rsa.verify_memo vk ~signature:endorsement
      (Tpm.Evtpm.endorsement_payload ~epoch ~stale key)
  in
  let found =
    Hashtbl.fold
      (fun _ (vk, epoch) acc ->
        match acc with
        | Some _ -> acc
        | None ->
            if check vk ~epoch:!epoch ~stale:false then Some `Fresh
            else begin
              (* A quote that fails the current-epoch fresh check may still
                 be from this vTPM: restored state signs with the stale
                 marker, and state saved before a rebind signs at an older
                 epoch.  Either way the binding is stale — distinguishable
                 from an unknown module, and reported as such. *)
              let stale_hit = ref (check vk ~epoch:!epoch ~stale:true) in
              let e = ref (!epoch - 1) in
              while (not !stale_hit) && !e >= 0 do
                stale_hit := check vk ~epoch:!e ~stale:false || check vk ~epoch:!e ~stale:true;
                decr e
              done;
              if !stale_hit then Some `Stale else None
            end)
      t.evtpms None
  in
  match found with
  | Some `Fresh -> Ok (Net.Ca.issue t.ca ~subject:anonymous_subject key)
  | Some `Stale -> Error `Stale_binding
  | None -> Error `Unknown_server

let check_certificate ~pca cert ~key =
  Net.Ca.verify ~ca:pca cert
  && String.equal cert.Net.Ca.subject anonymous_subject
  && String.equal (Crypto.Rsa.public_to_string cert.Net.Ca.pubkey) (Crypto.Rsa.public_to_string key)
