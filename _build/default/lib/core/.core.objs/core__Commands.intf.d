lib/core/commands.mli: Property Protocol Schedule Sim
