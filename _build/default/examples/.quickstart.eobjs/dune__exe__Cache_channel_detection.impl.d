examples/cache_channel_detection.ml: Attacks Cloud Commands Controller Core Format Hypervisor Interpret List Option Printf Property Report Sim
