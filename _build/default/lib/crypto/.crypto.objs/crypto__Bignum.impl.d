lib/crypto/bignum.ml: Array Bytes Char Drbg Format Hexs List Stdlib String
