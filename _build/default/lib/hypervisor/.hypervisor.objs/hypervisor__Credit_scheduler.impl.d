lib/hypervisor/credit_scheduler.ml: Array List Program Queue Sim
