test/test_attacks.ml: Alcotest Array Attacks Fun Gen Hypervisor List Net Printf QCheck QCheck_alcotest Sim String
