type config = {
  seed : int;
  num_servers : int;
  num_attestation_servers : int;
      (** AS instances; cloud servers are partitioned round-robin into
          clusters, one AS per cluster (paper 3.2.3 scalability) *)
  pcpus : int;
  mem_mb : int;
  key_bits : int;
  insecure_servers : int;
  corrupt_platforms : int list;
  refs : Interpret.refs;
  backend_of : int -> Tpm.Backend.kind;
      (** trust backend per server index; all-[Classic] stays byte-identical
          to the pre-backend cloud *)
}

let default_config =
  {
    seed = 2015;
    num_servers = 3;
    num_attestation_servers = 1;
    pcpus = 4;
    mem_mb = 32768;
    key_bits = 1024;
    insecure_servers = 0;
    corrupt_platforms = [];
    refs = Interpret.default_refs;
    backend_of = (fun _ -> Tpm.Backend.Classic);
  }

type t = {
  config : config;
  engine : Sim.Engine.t;
  net : Net.Network.t;
  ca : Net.Ca.t;
  pca : Privacy_ca.t;
  controller : Controller.t;
  attestation_servers : Attestation_server.t list;
  servers : Hypervisor.Server.t list;
  platform_root : Tpm.Platform_root.t option;
}

let config t = t.config
let engine t = t.engine
let net t = t.net
let ca t = t.ca
let pca t = t.pca
let controller t = t.controller
let attestation_server t = List.hd t.attestation_servers
let attestation_servers t = t.attestation_servers
let servers t = t.servers
let platform_root t = t.platform_root

let find_server t name =
  List.find_opt (fun s -> String.equal (Hypervisor.Server.name s) name) t.servers

let run_for t d = Sim.Engine.run_until t.engine (Sim.Engine.now t.engine + d)
let now t = Sim.Engine.now t.engine

(* Switch verdict transparency on end to end: every AS gets an append-only
   log (verdicts -> inclusion receipts in replies), the controller starts
   requiring and verifying those receipts, and each log emits a periodic
   signed checkpoint that auditors and customers can gossip. *)
let enable_audit ?(checkpoint_interval = Sim.Time.sec 1) t =
  let logs = List.map Attestation_server.enable_audit t.attestation_servers in
  Controller.set_auditing t.controller true;
  if checkpoint_interval > 0 then
    ignore
      (Sim.Engine.every t.engine ~period:checkpoint_interval (fun () ->
           List.iter (fun log -> ignore (Audit.Log.checkpoint log : Audit.Sth.t)) logs)
        : Sim.Engine.handle);
  logs

let all_capabilities = List.map Property.to_string Property.all

let build ?(config = default_config) () =
  let engine = Sim.Engine.create () in
  let net = Net.Network.create ~seed:config.seed () in
  let seed = string_of_int config.seed in
  let ca = Net.Ca.create ~seed ~bits:config.key_bits ~name:"cloud-root-ca" () in
  let pca = Privacy_ca.create ~seed ~bits:config.key_bits () in
  (* Hardware vendor root, minted only when some server actually runs a CVM
     report device (an all-classic cloud draws exactly the same key streams
     as before backends existed). *)
  let platform_root =
    let rec needs i =
      i < config.num_servers
      && (config.backend_of i = Tpm.Backend.Cvm_report || needs (i + 1))
    in
    if needs 0 then Some (Tpm.Platform_root.create ~bits:config.key_bits ~seed ()) else None
  in
  (* Cloud servers. *)
  let servers =
    List.init config.num_servers (fun i ->
        let name = Printf.sprintf "server-%d" (i + 1) in
        let secure = i < config.num_servers - config.insecure_servers in
        let platform =
          if List.mem i config.corrupt_platforms then Hypervisor.Server.corrupted_platform
          else Hypervisor.Server.pristine_platform
        in
        Hypervisor.Server.create ~engine ~name ~pcpus:config.pcpus ~mem_mb:config.mem_mb
          ~platform ~secure
          ~capabilities:(if secure then all_capabilities else [])
          ~key_bits:config.key_bits ~backend:(config.backend_of i) ?platform_root ~seed ())
  in
  (* Attestation clients + enrollment for secure servers.  Classic modules
     enroll their identity key; vTPMs enroll key + binding epoch in the
     CA's vTPM registry; CVM devices enroll nowhere — their trust chain
     terminates at the vendor root, not at the operator. *)
  List.iter
    (fun server ->
      match Hypervisor.Server.trust_backend server with
      | None -> ()
      | Some b ->
          let sname = Hypervisor.Server.name server in
          (match Tpm.Backend.kind b with
          | Tpm.Backend.Classic ->
              Privacy_ca.enroll_server pca ~name:sname (Tpm.Backend.identity_public b)
          | Tpm.Backend.Evtpm ->
              Privacy_ca.enroll_evtpm pca ~name:sname (Tpm.Backend.identity_public b)
                ~epoch:(Tpm.Backend.binding_epoch b)
          | Tpm.Backend.Cvm_report -> ());
          (match Attestation_client.create ~net ~ca ~seed ~key_bits:config.key_bits server with
          | Ok _client -> ()
          | Error `Not_secure -> ()))
    servers;
  (* Attestation servers: one per cluster of cloud servers. *)
  let n_as = max 1 config.num_attestation_servers in
  let attestation_servers =
    List.init n_as (fun i ->
        let name =
          if n_as = 1 then "attestation-server" else Printf.sprintf "attestation-server-%d" (i + 1)
        in
        let a =
          Attestation_server.create ~net ~ca ~pca ~refs:config.refs ~seed
            ~key_bits:config.key_bits ~name ()
        in
        Attestation_server.set_clock a (fun () -> Sim.Engine.now engine);
        let channel_server =
          Net.Secure_channel.Server.create ~identity:(Attestation_server.identity a)
            ~ca:(Net.Ca.public ca) ~seed
            ~on_request:(fun ~peer plaintext ->
              Attestation_server.request_handler a ~peer plaintext)
        in
        Net.Network.register net name (Net.Secure_channel.Server.handle channel_server);
        (* Only the controller may task the attestation server. *)
        Net.Secure_channel.Server.accept_only channel_server (String.equal "cloud-controller");
        a)
  in
  (* Cloud servers are assigned to AS clusters round-robin by index. *)
  let cluster_of host =
    match String.index_opt host '-' with
    | Some i -> (
        match int_of_string_opt (String.sub host (i + 1) (String.length host - i - 1)) with
        | Some n -> (n - 1) mod n_as
        | None -> 0)
    | None -> 0
  in
  (* Controller. *)
  let controller =
    Controller.create ~net ~engine ~ca ~seed ~key_bits:config.key_bits
      ~attestation_servers:
        (List.map
           (fun a -> (Attestation_server.name a, Attestation_server.public_key a))
           attestation_servers)
      ~cluster_of ()
  in
  List.iter (Controller.register_hypervisor controller) servers;
  List.iter
    (fun a ->
      Attestation_server.set_vm_image_lookup a (fun vid ->
          Option.map
            (fun r -> r.Database.image_name)
            (Database.vm (Controller.db controller) vid));
      Attestation_server.set_backend_lookup a (fun sname ->
          match Database.server (Controller.db controller) sname with
          | Some r -> r.Database.backend
          | None -> Tpm.Backend.Classic);
      match platform_root with
      | Some root -> Attestation_server.set_platform_root a (Tpm.Platform_root.public root)
      | None -> ())
    attestation_servers;
  (* Image catalog and standard workloads. *)
  List.iter (Controller.add_image controller)
    [ Hypervisor.Image.cirros; Hypervisor.Image.fedora; Hypervisor.Image.ubuntu ];
  Controller.register_workload controller "idle" (fun flavor ->
      Hypervisor.Vm.idle_programs flavor);
  Controller.register_workload controller "busy" (fun flavor () ->
      List.init flavor.Hypervisor.Flavor.vcpus (fun _ -> Hypervisor.Program.busy_loop ()));
  List.iter
    (fun bench ->
      Controller.register_workload controller bench.Workloads.Cloud_bench.name (fun flavor ->
          Workloads.Cloud_bench.programs bench ~vcpus:flavor.Hypervisor.Flavor.vcpus))
    Workloads.Cloud_bench.all;
  { config; engine; net; ca; pca; controller; attestation_servers; servers; platform_root }

(* --- vTPM lifecycle --------------------------------------------------------- *)

let vtpm_device t server =
  match find_server t server with
  | None -> Error ("no such server: " ^ server)
  | Some s -> (
      match Option.bind (Hypervisor.Server.trust_backend s) Tpm.Backend.as_evtpm with
      | None -> Error (server ^ " does not run an ephemeral vTPM backend")
      | Some dev -> Ok dev)

let vtpm_save t ~server = Result.bind (vtpm_device t server) Tpm.Evtpm.save_state

let vtpm_restore t ~server state =
  Result.bind (vtpm_device t server) (fun dev -> Tpm.Evtpm.restore_state dev state)

let vtpm_rebind t ~server =
  Result.map
    (fun dev ->
      let epoch = Tpm.Evtpm.rebind dev in
      Privacy_ca.rebind_evtpm t.pca ~name:server (Tpm.Evtpm.identity_public dev) ~epoch;
      epoch)
    (vtpm_device t server)

(* --- Customer --------------------------------------------------------------- *)

module Customer = struct
  type cloud = t

  type error = [ `Cloud of string | `Channel of Net.Secure_channel.error | `Forged of string ]

  let pp_error ppf = function
    | `Cloud e -> Format.fprintf ppf "cloud error: %s" e
    | `Channel e -> Format.fprintf ppf "channel error: %a" Net.Secure_channel.pp_error e
    | `Forged why -> Format.fprintf ppf "FORGED REPORT: %s" why

  type t = {
    name : string;
    cloud : cloud;
    drbg : Crypto.Drbg.t;
    mutable channel : Net.Secure_channel.Client.t option;
    (* (vid, property) -> (subscription nonce, rounds seen, user callback) *)
    subs : (string * string, string * int ref * (Report.t -> unit)) Hashtbl.t;
    mutable periodic_reports : Report.t list; (* newest first *)
    mutable forged : int;
  }

  let name t = t.name

  let transport t msg =
    let result, _elapsed =
      Net.Network.call_with_retry t.cloud.net ~src:t.name
        ~dst:(Controller.name t.cloud.controller) msg
    in
    match result with
    | Ok r -> Ok r
    | Error `Dropped -> Error "message dropped"
    | Error (`No_such_host h) -> Error ("no such host: " ^ h)

  let channel t =
    match t.channel with
    | Some ch -> Ok ch
    | None -> (
        let identity =
          Net.Secure_channel.Identity.make t.cloud.ca
            ~seed:(t.name ^ "|" ^ string_of_int t.cloud.config.seed)
            ~bits:t.cloud.config.key_bits ~name:t.name ()
        in
        match
          Net.Secure_channel.Client.connect ~identity ~ca:(Net.Ca.public t.cloud.ca)
            ~seed:(t.name ^ "|chan")
            ~peer:(Controller.name t.cloud.controller)
            ~transport:(transport t)
        with
        | Ok ch ->
            t.channel <- Some ch;
            Ok ch
        | Error e -> Error (`Channel e))

  let call t command =
    let ( let* ) = Result.bind in
    let* ch = channel t in
    match Net.Secure_channel.Client.call_robust ch (Commands.encode_command command) with
    | Error e ->
        t.channel <- None;
        Error (`Channel e)
    | Ok raw -> (
        match Commands.decode_reply raw with
        | None -> Error (`Cloud "malformed reply")
        | Some (Commands.Err why) -> Error (`Cloud why)
        | Some reply -> Ok reply)

  let controller_key t =
    match t.channel with
    | Some ch -> Some (Net.Secure_channel.Client.peer_key ch)
    | None -> None

  let verify_report t ~vid ~property ~nonce (creport : Protocol.controller_report) =
    match controller_key t with
    | None -> Error (`Forged "no authenticated controller key")
    | Some key -> (
        match
          Protocol.verify_controller_report ~key ~expected_vid:vid ~expected_property:property
            ~expected_nonce:nonce creport
        with
        | Ok () -> Ok creport.Protocol.report
        | Error e -> Error (`Forged (Format.asprintf "%a" Protocol.pp_verify_error e)))

  let create cloud ~name =
    let t =
      {
        name;
        cloud;
        drbg = Crypto.Drbg.create ~seed:("customer|" ^ name);
        channel = None;
        subs = Hashtbl.create 4;
        periodic_reports = [];
        forged = 0;
      }
    in
    (* Periodic results are pushed back through the controller's delivery
       hook; each is chain-verified against the subscription nonce. *)
    Controller.subscribe cloud.controller ~owner:name (fun creport ->
        let key =
          (creport.Protocol.vid, Property.to_string creport.Protocol.property)
        in
        match Hashtbl.find_opt t.subs key with
        | None -> t.forged <- t.forged + 1
        | Some (sub_nonce, rounds, callback) -> (
            let round = !rounds + 1 in
            let expected_nonce =
              Crypto.Sha256.digest (sub_nonce ^ "|" ^ string_of_int round)
            in
            match
              verify_report t ~vid:creport.Protocol.vid ~property:creport.Protocol.property
                ~nonce:expected_nonce creport
            with
            | Ok report ->
                rounds := round;
                t.periodic_reports <- report :: t.periodic_reports;
                callback report
            | Error _ -> t.forged <- t.forged + 1));
    t

  let launch t ~image ~flavor ?(properties = []) ?(workload = "idle") () =
    match call t (Commands.Launch { image; flavor; properties; workload }) with
    | Ok (Commands.Ok_launch info) -> Ok info
    | Ok _ -> Error (`Cloud "unexpected reply")
    | Error e -> Error e

  let attest t ~vid ~property =
    let nonce = Crypto.Drbg.nonce t.drbg in
    match call t (Commands.Attest_current { Protocol.vid; property; nonce }) with
    | Ok (Commands.Ok_report creport) -> verify_report t ~vid ~property ~nonce creport
    | Ok _ -> Error (`Cloud "unexpected reply")
    | Error e -> Error e

  let attest_periodic_scheduled t ~vid ~property ~schedule ?(on_report = fun _ -> ()) () =
    let nonce = Crypto.Drbg.nonce t.drbg in
    Hashtbl.replace t.subs (vid, Property.to_string property) (nonce, ref 0, on_report);
    match call t (Commands.Attest_periodic { vid; property; schedule; nonce }) with
    | Ok Commands.Ok_ack -> Ok ()
    | Ok _ -> Error (`Cloud "unexpected reply")
    | Error e ->
        Hashtbl.remove t.subs (vid, Property.to_string property);
        Error e

  let attest_periodic t ~vid ~property ~freq ?on_report () =
    attest_periodic_scheduled t ~vid ~property ~schedule:(Schedule.fixed freq) ?on_report ()

  let attest_periodic_random t ~vid ~property ~min ~max ?on_report () =
    attest_periodic_scheduled t ~vid ~property ~schedule:(Schedule.random ~min ~max) ?on_report ()

  let stop_periodic t ~vid ~property =
    let nonce = Crypto.Drbg.nonce t.drbg in
    Hashtbl.remove t.subs (vid, Property.to_string property);
    match call t (Commands.Stop_periodic { vid; property; nonce }) with
    | Ok Commands.Ok_ack -> Ok ()
    | Ok _ -> Error (`Cloud "unexpected reply")
    | Error e -> Error e

  let terminate t ~vid =
    match call t (Commands.Terminate { vid }) with
    | Ok Commands.Ok_ack -> Ok ()
    | Ok _ -> Error (`Cloud "unexpected reply")
    | Error e -> Error e

  let describe t ~vid =
    match call t (Commands.Describe { vid }) with
    | Ok (Commands.Ok_describe { state; properties }) -> Ok (state, properties)
    | Ok _ -> Error (`Cloud "unexpected reply")
    | Error e -> Error e

  let periodic_reports t = List.rev t.periodic_reports
  let forged_count t = t.forged
end
