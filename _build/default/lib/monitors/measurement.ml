module Codec = Wire.Codec

type request =
  | Platform_integrity
  | Vm_image_integrity
  | Task_list
  | Cpu_burst_histogram
  | Cpu_time of Sim.Time.t
  | Cache_miss_pattern
  | Ima_log

type value =
  | Measured_platform of string
  | Measured_image of string
  | Measured_tasks of { kernel : string list; visible : string list }
  | Measured_histogram of int array
  | Measured_cpu of { vtime : Sim.Time.t; steal : Sim.Time.t; window : Sim.Time.t; vcpus : int }
  | Measured_miss_windows of int array
  | Measured_ima of (string * string) list

let request_to_string = function
  | Platform_integrity -> "platform-integrity"
  | Vm_image_integrity -> "vm-image-integrity"
  | Task_list -> "task-list"
  | Cpu_burst_histogram -> "cpu-burst-histogram"
  | Cpu_time w -> Printf.sprintf "cpu-time[%.0fms]" (Sim.Time.to_ms w)
  | Cache_miss_pattern -> "cache-miss-pattern"
  | Ima_log -> "ima-log" 

let pp_request ppf r = Format.pp_print_string ppf (request_to_string r)

let pp_value ppf = function
  | Measured_platform h -> Format.fprintf ppf "platform=%s" (Crypto.Hexs.short h)
  | Measured_image h -> Format.fprintf ppf "image=%s" (Crypto.Hexs.short h)
  | Measured_tasks { kernel; visible } ->
      Format.fprintf ppf "tasks(kernel=%d, visible=%d)" (List.length kernel)
        (List.length visible)
  | Measured_histogram bins ->
      Format.fprintf ppf "histogram(n=%d)" (Array.fold_left ( + ) 0 bins)
  | Measured_cpu { vtime; steal; window; vcpus } ->
      Format.fprintf ppf "cpu(%.1fms run, %.1fms steal / %.1fms, %d vcpus)"
        (Sim.Time.to_ms vtime) (Sim.Time.to_ms steal) (Sim.Time.to_ms window) vcpus
  | Measured_miss_windows w ->
      Format.fprintf ppf "cache-misses(%d windows, %d total)" (Array.length w)
        (Array.fold_left ( + ) 0 w)
  | Measured_ima entries -> Format.fprintf ppf "ima(%d binaries)" (List.length entries)

let encode_request e = function
  | Platform_integrity -> Codec.Enc.u8 e 1
  | Vm_image_integrity -> Codec.Enc.u8 e 2
  | Task_list -> Codec.Enc.u8 e 3
  | Cpu_burst_histogram -> Codec.Enc.u8 e 4
  | Cpu_time w ->
      Codec.Enc.u8 e 5;
      Codec.Enc.int e w
  | Cache_miss_pattern -> Codec.Enc.u8 e 6
  | Ima_log -> Codec.Enc.u8 e 7

let decode_request d =
  match Codec.Dec.u8 d with
  | 1 -> Platform_integrity
  | 2 -> Vm_image_integrity
  | 3 -> Task_list
  | 4 -> Cpu_burst_histogram
  | 5 -> Cpu_time (Codec.Dec.int d)
  | 6 -> Cache_miss_pattern
  | 7 -> Ima_log
  | _ -> raise (Codec.Error "bad measurement request tag")

let encode_value e = function
  | Measured_platform h ->
      Codec.Enc.u8 e 1;
      Codec.Enc.str e h
  | Measured_image h ->
      Codec.Enc.u8 e 2;
      Codec.Enc.str e h
  | Measured_tasks { kernel; visible } ->
      Codec.Enc.u8 e 3;
      Codec.Enc.list e (Codec.Enc.str e) kernel;
      Codec.Enc.list e (Codec.Enc.str e) visible
  | Measured_histogram bins ->
      Codec.Enc.u8 e 4;
      Codec.Enc.int_array e bins
  | Measured_cpu { vtime; steal; window; vcpus } ->
      Codec.Enc.u8 e 5;
      Codec.Enc.int e vtime;
      Codec.Enc.int e steal;
      Codec.Enc.int e window;
      Codec.Enc.u16 e vcpus
  | Measured_miss_windows w ->
      Codec.Enc.u8 e 6;
      Codec.Enc.int_array e w
  | Measured_ima entries ->
      Codec.Enc.u8 e 7;
      Codec.Enc.list e
        (fun (name, hash) ->
          Codec.Enc.str e name;
          Codec.Enc.str e hash)
        entries

let decode_value d =
  match Codec.Dec.u8 d with
  | 1 -> Measured_platform (Codec.Dec.str d)
  | 2 -> Measured_image (Codec.Dec.str d)
  | 3 ->
      let kernel = Codec.Dec.list d Codec.Dec.str in
      let visible = Codec.Dec.list d Codec.Dec.str in
      Measured_tasks { kernel; visible }
  | 4 -> Measured_histogram (Codec.Dec.int_array d)
  | 5 ->
      let vtime = Codec.Dec.int d in
      let steal = Codec.Dec.int d in
      let window = Codec.Dec.int d in
      let vcpus = Codec.Dec.u16 d in
      Measured_cpu { vtime; steal; window; vcpus }
  | 6 -> Measured_miss_windows (Codec.Dec.int_array d)
  | 7 ->
      Measured_ima
        (Codec.Dec.list d (fun d ->
             let name = Codec.Dec.str d in
             let hash = Codec.Dec.str d in
             (name, hash)))
  | _ -> raise (Codec.Error "bad measurement value tag")

let encode_requests rs = Codec.encode (fun e -> Codec.Enc.list e (encode_request e) rs)

let decode_requests s = Codec.decode_opt s (fun d -> Codec.Dec.list d decode_request)

let encode_values vs = Codec.encode (fun e -> Codec.Enc.list e (encode_value e) vs)

let decode_values s = Codec.decode_opt s (fun d -> Codec.Dec.list d decode_value)
