open Core

type row = {
  image : string;
  flavor : string;
  stages : (string * float) list;
  total_ms : float;
  attestation_pct : float;
}

type result = row list

let images = [ "cirros"; "fedora"; "ubuntu" ]
let flavors = [ "small"; "medium"; "large" ]

let run ?(seed = 42) () =
  List.concat_map
    (fun image ->
      List.map
        (fun flavor ->
          (* A fresh cloud per combination so every launch sees the same
             fleet state (as the paper launches onto idle servers). *)
          let cloud = Cloud.build ~config:(Common.fast_config ~seed) () in
          let customer = Cloud.Customer.create cloud ~name:"alice" in
          match
            Cloud.Customer.launch customer ~image ~flavor
              ~properties:[ Property.Startup_integrity ] ()
          with
          | Error e ->
              failwith (Format.asprintf "fig9: launch failed: %a" Cloud.Customer.pp_error e)
          | Ok info ->
              let stages =
                List.map (fun (l, c) -> (l, Sim.Time.to_ms c)) info.Commands.stages
              in
              let total_ms = List.fold_left (fun acc (_, c) -> acc +. c) 0.0 stages in
              let att = try List.assoc "attestation" stages with Not_found -> 0.0 in
              {
                image;
                flavor;
                stages;
                total_ms;
                attestation_pct = 100.0 *. att /. total_ms;
              })
        flavors)
    images

let to_json ~seed rows =
  Json.Obj
    [
      ("experiment", Json.Str "fig9");
      ("seed", Json.Int seed);
      ( "rows",
        Json.List
          (List.map
             (fun r ->
               Json.Obj
                 [
                   ("image", Json.Str r.image);
                   ("flavor", Json.Str r.flavor);
                   ( "stages_ms",
                     Json.Obj (List.map (fun (l, c) -> (l, Json.Float c)) r.stages) );
                   ("total_ms", Json.Float r.total_ms);
                   ("attestation_pct", Json.Float r.attestation_pct);
                 ])
             rows) );
    ]

let print rows =
  Common.section "Figure 9: VM launch stage times (ms)";
  Printf.printf "%-8s %-8s %11s %11s %9s %9s %12s %9s %7s\n" "image" "flavor" "scheduling"
    "networking" "mapping" "spawning" "attestation" "total" "att%";
  List.iter
    (fun r ->
      let s l = try List.assoc l r.stages with Not_found -> 0.0 in
      Printf.printf "%-8s %-8s %11.0f %11.0f %9.0f %9.0f %12.0f %9.0f %6.1f%%\n" r.image
        r.flavor (s "scheduling") (s "networking") (s "mapping") (s "spawning")
        (s "attestation") r.total_ms r.attestation_pct)
    rows
