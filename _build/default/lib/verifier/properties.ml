type outcome = Holds | Violated of string

type check = { id : string; name : string; outcome : outcome }

let evil_measurements = Term.Const "evil-measurements"
let evil_report = Term.Const "report-says-healthy"
let evil_property = Term.Const "evil-property"

let session t i = List.nth t.Model.sessions (i - 1)

let secret t name term =
  if Deduction.derives t.Model.knowledge term then
    Violated (Printf.sprintf "attacker derives %s" name)
  else Holds

let all_hold = function
  | [] -> Holds
  | outcomes -> (
      match List.find_opt (function Violated _ -> true | Holds -> false) outcomes with
      | Some v -> v
      | None -> Holds)

(* (1) Secrecy of the symmetric session keys and the private identity keys. *)
let check_channel_key_secrecy t =
  all_hold
    [ secret t "Kx" t.Model.kx; secret t "Ky" t.Model.ky; secret t "Kz" t.Model.kz ]

let check_identity_key_secrecy t =
  all_hold
    ([
       secret t "SKcust" t.Model.skcust;
       secret t "SKc" t.Model.skc;
       secret t "SKa" t.Model.ska;
       secret t "SKs" t.Model.sks;
     ]
    @ List.map (fun s -> secret t "ASKs" s.Model.asks) t.Model.sessions)

(* (2) Secrecy of P, M, R. *)
let check_payload_secrecy t =
  all_hold
    (List.concat_map
       (fun (s : Model.session) ->
         [
           secret t "property P" s.property;
           secret t "measurements M" s.measurements;
           secret t "report R" s.report;
         ])
       t.Model.sessions)

(* (3) Integrity: no verifier accepts attacker-chosen measurements or
   reports.  Candidate forgeries: an accepting message built with each key
   the attacker could possibly wield; the signing key must additionally be
   endorsed by the cloud server's SKs (the privacy-CA check). *)
let check_integrity t =
  let s2 = session t 2 in
  let know = t.Model.knowledge in
  let attacker_key = Term.Fresh "SKi" in
  let candidate_keys = attacker_key :: List.map (fun s -> s.Model.asks) t.Model.sessions in
  let measurement_forgery =
    List.exists
      (fun key ->
        Deduction.derives know (Model.endorsement t ~key)
        && Deduction.derives know
             (Model.msg_server_response t s2 ~measurements:evil_measurements ~key))
      candidate_keys
  in
  (* Report verifiers pin the expected key (VKa for the controller, VKc for
     the customer), so the only keys worth trying are those two. *)
  let report_forgery =
    Deduction.derives know (Model.msg_as_report t s2 ~report:evil_report ~key:t.Model.ska)
    || Deduction.derives know
         (Model.msg_controller_report t s2 ~report:evil_report ~key:t.Model.skc)
  in
  if measurement_forgery then Violated "attacker forges an accepted measurement payload"
  else if report_forgery then Violated "attacker forges an accepted attestation report"
  else Holds

(* Freshness: a stale session-1 response/report must not be accepted in
   session 2 (replay).  The nonces inside the quoted payloads are what
   rejects it. *)
let check_freshness t =
  let s1 = session t 1 and s2 = session t 2 in
  let know = t.Model.knowledge in
  let replayed_measurements =
    Deduction.derives know
      (Model.msg_server_response t s2 ~measurements:s1.Model.measurements ~key:s1.Model.asks)
  in
  let replayed_report =
    Deduction.derives know
      (Model.msg_controller_report t s2 ~report:s1.Model.report ~key:t.Model.skc)
  in
  if replayed_measurements then
    Violated "stale measurements from session 1 accepted in session 2"
  else if replayed_report then Violated "stale report from session 1 accepted in session 2"
  else Holds

(* (4)-(6) Authentication per hop: the attacker, without the honest peer,
   cannot produce any message the responder/initiator accepts for the
   current session. *)
let check_auth_customer_controller t =
  let s2 = session t 2 in
  let know = t.Model.knowledge in
  let fake_request =
    Deduction.derives know
      (let fields =
         if t.Model.variant.Model.bind_nonces then
           [ t.Model.vid; evil_property; Term.Const "evil-nonce" ]
         else [ t.Model.vid; evil_property ]
       in
       if t.Model.variant.Model.encrypt then Term.Senc (t.Model.kx, Term.pair_list fields)
       else Term.pair_list fields)
  in
  let fake_report =
    Deduction.derives know (Model.msg_controller_report t s2 ~report:evil_report ~key:t.Model.skc)
  in
  if fake_request then Violated "attacker impersonates the customer to the controller"
  else if fake_report then Violated "attacker impersonates the controller to the customer"
  else Holds

let check_auth_controller_as t =
  let s2 = session t 2 in
  let know = t.Model.knowledge in
  let fields =
    if t.Model.variant.Model.bind_nonces then
      [ t.Model.vid; t.Model.server_id; evil_property; Term.Const "evil-nonce" ]
    else [ t.Model.vid; t.Model.server_id; evil_property ]
  in
  let fake_request =
    Deduction.derives know
      (if t.Model.variant.Model.encrypt then Term.Senc (t.Model.ky, Term.pair_list fields)
       else Term.pair_list fields)
  in
  let fake_report =
    Deduction.derives know (Model.msg_as_report t s2 ~report:evil_report ~key:t.Model.ska)
  in
  if fake_request then Violated "attacker impersonates the controller to the AS"
  else if fake_report then Violated "attacker impersonates the AS to the controller"
  else Holds

let check_auth_as_server t =
  let s2 = session t 2 in
  let know = t.Model.knowledge in
  let fields =
    if t.Model.variant.Model.bind_nonces then
      [ t.Model.vid; Term.Const "evil-requests"; Term.Const "evil-nonce" ]
    else [ t.Model.vid; Term.Const "evil-requests" ]
  in
  let fake_request =
    Deduction.derives know
      (if t.Model.variant.Model.encrypt then Term.Senc (t.Model.kz, Term.pair_list fields)
       else Term.pair_list fields)
  in
  let attacker_key = Term.Fresh "SKi" in
  let fake_attester =
    Deduction.derives know (Model.endorsement t ~key:attacker_key)
    && Deduction.derives know
         (Model.msg_server_response t s2 ~measurements:evil_measurements ~key:attacker_key)
  in
  if fake_request then Violated "attacker impersonates the AS to the cloud server"
  else if fake_attester then Violated "attacker impersonates a certified cloud server"
  else Holds

let check_ids =
  [
    "secrecy-channel-keys";
    "secrecy-identity-keys";
    "secrecy-payloads";
    "integrity";
    "freshness";
    "auth-customer-controller";
    "auth-controller-as";
    "auth-as-server";
  ]

let run variant =
  let t = Model.build variant in
  [
    {
      id = "secrecy-channel-keys";
      name = "(1a) session keys Kx/Ky/Kz stay secret";
      outcome = check_channel_key_secrecy t;
    };
    {
      id = "secrecy-identity-keys";
      name = "(1b) private keys SKcust/SKc/SKa/SKs/ASKs stay secret";
      outcome = check_identity_key_secrecy t;
    };
    {
      id = "secrecy-payloads";
      name = "(2) P, M and R stay secret";
      outcome = check_payload_secrecy t;
    };
    {
      id = "integrity";
      name = "(3) P, M and R cannot be modified";
      outcome = check_integrity t;
    };
    {
      id = "freshness";
      name = "(3b) nonces reject cross-session replay";
      outcome = check_freshness t;
    };
    {
      id = "auth-customer-controller";
      name = "(4) customer <-> controller authenticated";
      outcome = check_auth_customer_controller t;
    };
    {
      id = "auth-controller-as";
      name = "(5) controller <-> attestation server authenticated";
      outcome = check_auth_controller_as t;
    };
    {
      id = "auth-as-server";
      name = "(6) attestation server <-> cloud server authenticated";
      outcome = check_auth_as_server t;
    };
  ]

let holds checks = List.for_all (fun c -> c.outcome = Holds) checks

let find checks id = List.find_opt (fun c -> String.equal c.id id) checks

let pp_check ppf c =
  match c.outcome with
  | Holds -> Format.fprintf ppf "%-28s %s: HOLDS" c.id c.name
  | Violated why -> Format.fprintf ppf "%-28s %s: VIOLATED (%s)" c.id c.name why
