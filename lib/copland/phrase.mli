(** Attestation protocols as data (Copland-style phrases).

    CloudMonatt's flow — customer asks the Controller, the Controller asks
    the cluster's Attestation Server, the AS measures through the server's
    Attestation Client — is one point in a protocol space.  A phrase names
    a point in that space: which VM slots are appraised for which
    properties, in what order or in parallel, through which AS cluster,
    and whether the host's trust backend is appraised before its VM quotes
    are believed (layered attestation).  Phrases have a deterministic
    one-line codec so they embed in fuzz-repro lines, a typing judgment
    ({!Typing}), static cost estimates ({!Estimate}), an executable
    semantics over the real Controller ({!Interp}), and a generated
    Dolev-Yao model ({!Dy}). *)

type merge =
  | All  (** healthy iff every branch is healthy (conjunction) *)
  | Any  (** healthy if either branch is healthy (disjunction) *)
  | Quorum  (** healthy iff a strict majority of leaf appraisals are *)

type t =
  | Appraise of { slot : int; prop : int; nonce : bool }
      (** appraise property [prop] of the VM in [slot]; [nonce = false] is
          the weakened replay-prone form *)
  | Seq of t * t
  | Par of merge * t * t
  | Deleg of { cluster : int; auth : bool; body : t }
      (** delegate [body] to AS cluster [cluster]; [auth = false] skips
          authenticating the sub-appraiser *)
  | Layer of { slot : int; checked : bool; body : t }
      (** appraise the trust backend of [slot]'s host before running
          [body]; [checked = false] skips the freshness check *)

val default : t
(** ["a0.0"] — compiles to exactly the hardcoded Controller flow. *)

val to_string : t -> string
(** Deterministic one-line codec: [a0.0], [(a0.0>a1.0)], [(a0.0&Aa1.1)],
    [d1:a2.0], [l0:a0.1]; weakened forms carry a ['-'] after the operator.
    Never contains a space or [';'], so it embeds in fuzz-op tokens. *)

val of_string : string -> (t, string) result
(** Strict inverse of {!to_string}: rejects trailing garbage. *)

val equal : t -> t -> bool
val size : t -> int
(** Number of operator nodes. *)

val appraisals : t -> int
(** Number of {!Appraise} leaves. *)

type leaf = {
  index : int;  (** position in execution order *)
  slot : int;
  prop : int;
  nonce : bool;
  deleg : (int * bool) option;  (** enclosing (cluster, authenticated) *)
  layer : (int * bool) option;  (** enclosing (host slot, checked) *)
}

val leaves : t -> leaf list
(** Leaf appraisals in execution order with their enclosing context. *)

val weakened : t -> bool
(** Does any node use a weakened ['-'] form? *)

val pp : Format.formatter -> t -> unit
