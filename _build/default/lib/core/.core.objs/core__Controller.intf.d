lib/core/controller.mli: Commands Crypto Database Hypervisor Ledger Net Property Protocol Report Schedule Sim
