(* Continuous monitoring: Fleet.Monitor unit semantics, the driver-level
   invariants the scheduler must keep (off-path byte-identity against the
   committed BENCH_fleet fingerprint, sharded determinism with monitoring
   on, probe conservation, storm detection, exactly-once rescheduling
   under churn), and QCheck model tests backfilling the two structures
   the scheduler leans on: Fleet.Pqueue and Core.Verdict_cache. *)

let qtest = QCheck_alcotest.to_alcotest
let ms = Sim.Time.ms
let sec = Sim.Time.sec

(* ---------------------------------------------------------------- *)
(* Fleet.Monitor unit semantics                                      *)
(* ---------------------------------------------------------------- *)

let mcfg =
  {
    Fleet.Monitor.default_config with
    Fleet.Monitor.tick = ms 100;
    budget = sec 1;
    recheck_budget = ms 300;
    lead = ms 200;
  }

let no_cache ~vid:_ ~prop:_ = None
let vids_of probes = List.map (fun p -> p.Fleet.Monitor.vid) probes

let one_probe (r : Fleet.Monitor.tick_result) =
  match r.Fleet.Monitor.probes with
  | [ p ] -> p
  | ps -> Alcotest.failf "expected one probe, got %d" (List.length ps)

let test_add_remove () =
  let m = Fleet.Monitor.create mcfg in
  Alcotest.(check bool)
    "fresh add" true
    (Fleet.Monitor.add m ~vid:"vm-1" ~idx:0 ~cls:Fleet.Pqueue.Periodic
       ~deadline:(ms 500));
  Alcotest.(check bool)
    "re-add is a replace" false
    (Fleet.Monitor.add m ~vid:"vm-1" ~idx:0 ~cls:Fleet.Pqueue.Periodic
       ~deadline:(ms 500));
  Alcotest.(check int) "size" 1 (Fleet.Monitor.size m);
  Alcotest.(check bool) "remove present" true (Fleet.Monitor.remove m ~vid:"vm-1");
  Alcotest.(check bool) "remove absent" false (Fleet.Monitor.remove m ~vid:"vm-1");
  Alcotest.(check int) "empty" 0 (Fleet.Monitor.size m)

let test_tick_order () =
  let m = Fleet.Monitor.create mcfg in
  (* Insertion order b, a, c — probes must still come out in fleet-index
     order, the scheduler's determinism anchor. *)
  ignore
    (Fleet.Monitor.add m ~vid:"vm-b" ~idx:1 ~cls:Fleet.Pqueue.Periodic
       ~deadline:(ms 100)
      : bool);
  ignore
    (Fleet.Monitor.add m ~vid:"vm-a" ~idx:0 ~cls:Fleet.Pqueue.Periodic
       ~deadline:(ms 150)
      : bool);
  ignore
    (Fleet.Monitor.add m ~vid:"vm-c" ~idx:2 ~cls:Fleet.Pqueue.Periodic
       ~deadline:(sec 10)
      : bool);
  let r = Fleet.Monitor.tick m ~now:0 ~fresh_until:no_cache in
  Alcotest.(check (list string))
    "due probes in fleet-index order" [ "vm-a"; "vm-b" ]
    (vids_of r.Fleet.Monitor.probes);
  Alcotest.(check int) "total tracks the whole set" 3 r.Fleet.Monitor.total;
  Alcotest.(check int) "nothing fresh yet" 0 r.Fleet.Monitor.fresh;
  (* Both due entries are now in flight: a second tick at the same time
     must not double-probe them. *)
  let r2 = Fleet.Monitor.tick m ~now:0 ~fresh_until:no_cache in
  Alcotest.(check (list string)) "inflight not re-probed" []
    (vids_of r2.Fleet.Monitor.probes)

let test_complete_rearms () =
  let m = Fleet.Monitor.create mcfg in
  ignore
    (Fleet.Monitor.add m ~vid:"vm-a" ~idx:0 ~cls:Fleet.Pqueue.Periodic
       ~deadline:(ms 100)
      : bool);
  let p = one_probe (Fleet.Monitor.tick m ~now:0 ~fresh_until:no_cache) in
  Fleet.Monitor.complete m p ~now:(ms 50) ~served:true;
  (* Served: fresh for a budget, rearmed one budget out. *)
  let r = Fleet.Monitor.tick m ~now:(ms 50) ~fresh_until:no_cache in
  Alcotest.(check int) "fresh after serve" 1 r.Fleet.Monitor.fresh;
  Alcotest.(check (list string)) "not due again yet" []
    (vids_of r.Fleet.Monitor.probes);
  (* Due again when the new deadline (50ms + budget) enters the lead
     window. *)
  let r2 = Fleet.Monitor.tick m ~now:(ms 950) ~fresh_until:no_cache in
  Alcotest.(check (list string)) "due one budget later" [ "vm-a" ]
    (vids_of r2.Fleet.Monitor.probes)

let test_shed_retries () =
  let m = Fleet.Monitor.create mcfg in
  ignore
    (Fleet.Monitor.add m ~vid:"vm-a" ~idx:0 ~cls:Fleet.Pqueue.Periodic
       ~deadline:(ms 100)
      : bool);
  let p = one_probe (Fleet.Monitor.tick m ~now:0 ~fresh_until:no_cache) in
  Fleet.Monitor.complete m p ~now:(ms 50) ~served:false;
  (* Shed: the deadline stays armed, the very next tick retries. *)
  let r = Fleet.Monitor.tick m ~now:(ms 100) ~fresh_until:no_cache in
  Alcotest.(check (list string)) "shed probe retried" [ "vm-a" ]
    (vids_of r.Fleet.Monitor.probes);
  Alcotest.(check int) "shed left nothing fresh" 0 r.Fleet.Monitor.fresh;
  let p2 = one_probe r in
  Alcotest.(check int)
    "retry keeps the original deadline" (ms 100)
    p2.Fleet.Monitor.deadline

let test_cache_dedup () =
  let m = Fleet.Monitor.create mcfg in
  ignore
    (Fleet.Monitor.add m ~vid:"vm-a" ~idx:0 ~cls:Fleet.Pqueue.Periodic
       ~deadline:(ms 100)
      : bool);
  let cached ~vid:_ ~prop:_ = Some (ms 700) in
  let r = Fleet.Monitor.tick m ~now:0 ~fresh_until:cached in
  Alcotest.(check (list string)) "cached verdict dedups" [ "vm-a" ]
    r.Fleet.Monitor.dedups;
  Alcotest.(check (list string)) "no probe for a fresh VM" []
    (vids_of r.Fleet.Monitor.probes);
  Alcotest.(check int) "dedup counts the VM fresh" 1 r.Fleet.Monitor.fresh;
  (* The deadline moved to where the cached verdict goes stale: not due
     at 400ms (700 > 400 + lead is false... 700 <= 600 is false). *)
  let r2 = Fleet.Monitor.tick m ~now:(ms 400) ~fresh_until:no_cache in
  Alcotest.(check (list string)) "deadline pushed to cache expiry" []
    (vids_of r2.Fleet.Monitor.probes);
  (* Once the cache no longer covers it, the probe goes out. *)
  let r3 = Fleet.Monitor.tick m ~now:(ms 600) ~fresh_until:no_cache in
  Alcotest.(check (list string)) "probe once cache expires" [ "vm-a" ]
    (vids_of r3.Fleet.Monitor.probes)

let test_stale_token () =
  let m = Fleet.Monitor.create mcfg in
  ignore
    (Fleet.Monitor.add m ~vid:"vm-a" ~idx:0 ~cls:Fleet.Pqueue.Periodic
       ~deadline:(ms 100)
      : bool);
  let p = one_probe (Fleet.Monitor.tick m ~now:0 ~fresh_until:no_cache) in
  (* The VM migrated away and back: remove + re-add mint a new stamp. *)
  ignore (Fleet.Monitor.remove m ~vid:"vm-a" : bool);
  ignore
    (Fleet.Monitor.add m ~vid:"vm-a" ~idx:0 ~cls:Fleet.Pqueue.Recheck
       ~deadline:(sec 10)
      : bool);
  Fleet.Monitor.complete m p ~now:(ms 50) ~served:true;
  (* The stale completion must not mark the new incarnation fresh. *)
  let r = Fleet.Monitor.tick m ~now:(ms 60) ~fresh_until:no_cache in
  Alcotest.(check int) "stale token ignored" 0 r.Fleet.Monitor.fresh

let test_force_all () =
  let m = Fleet.Monitor.create mcfg in
  ignore
    (Fleet.Monitor.add m ~vid:"vm-a" ~idx:0 ~cls:Fleet.Pqueue.Periodic
       ~deadline:(ms 100)
      : bool);
  ignore
    (Fleet.Monitor.add m ~vid:"vm-b" ~idx:1 ~cls:Fleet.Pqueue.Periodic
       ~deadline:(sec 10)
      : bool);
  (* vm-a goes in flight; then a CVE storm forces everyone. *)
  let p = one_probe (Fleet.Monitor.tick m ~now:0 ~fresh_until:no_cache) in
  let forced =
    Fleet.Monitor.force_all m ~now:(ms 100) ~cls:Fleet.Pqueue.Recheck
      ~prop:Core.Property.Startup_integrity
  in
  Alcotest.(check (list string))
    "force_all returns every entry in index order" [ "vm-a"; "vm-b" ] forced;
  (* vm-b was idle: it is due immediately with the forced class/property. *)
  let r = Fleet.Monitor.tick m ~now:(ms 300) ~fresh_until:no_cache in
  Alcotest.(check (list string)) "idle entry rechecks promptly" [ "vm-b" ]
    (vids_of r.Fleet.Monitor.probes);
  let pb = one_probe r in
  Alcotest.(check bool)
    "forced class" true
    (pb.Fleet.Monitor.cls = Fleet.Pqueue.Recheck);
  Alcotest.(check bool)
    "forced property" true
    (pb.Fleet.Monitor.prop = Core.Property.Startup_integrity);
  (* vm-a's force was pending behind the in-flight probe: applying at
     completion time rearms it with the recheck budget, and the served
     verdict must NOT mark it fresh (it is the suspect verdict). *)
  Fleet.Monitor.complete m p ~now:(ms 400) ~served:true;
  let r2 = Fleet.Monitor.tick m ~now:(ms 600) ~fresh_until:no_cache in
  Alcotest.(check (list string)) "pending force applied at completion"
    [ "vm-a" ]
    (vids_of r2.Fleet.Monitor.probes);
  let pa = one_probe r2 in
  Alcotest.(check bool)
    "pending force carries the class" true
    (pa.Fleet.Monitor.cls = Fleet.Pqueue.Recheck)

let test_due_storms () =
  let storms =
    [
      Fleet.Monitor.Rack_compromise { at = ms 100; cluster = 1 };
      Fleet.Monitor.Image_cve
        { at = ms 500; property = Core.Property.Runtime_integrity };
    ]
  in
  let m = Fleet.Monitor.create { mcfg with Fleet.Monitor.storms } in
  Alcotest.(check int) "nothing due at t=0" 0
    (List.length (Fleet.Monitor.due_storms m ~now:0));
  let due = Fleet.Monitor.due_storms m ~now:(ms 200) in
  Alcotest.(check (list int)) "first storm due, index attached" [ 0 ]
    (List.map fst due);
  Alcotest.(check (list int)) "second storm due later" [ 1 ]
    (List.map fst (Fleet.Monitor.due_storms m ~now:(sec 1)));
  Alcotest.(check int) "storms fire once" 0
    (List.length (Fleet.Monitor.due_storms m ~now:(sec 2)))

(* ---------------------------------------------------------------- *)
(* Driver integration                                                 *)
(* ---------------------------------------------------------------- *)

(* Small but honest fleet: 3 AS clusters, churn on, cache on, fault-free
   measurements so freshness and detection are attributable. *)
let fleet_base =
  {
    Fleet.Driver.default_config with
    Fleet.Driver.seed = 11;
    servers = 24;
    vms = 60;
    as_count = 3;
    as_capacity = 4;
    queue_depth = 12;
    ttl = sec 5;
    rate_per_s = 8.0;
    duration = sec 4;
    drain = sec 6;
    unhealthy_p = 0.0;
    churn_period = ms 400;
    hot_vms = 12;
    epoch = ms 50;
  }

let fleet_mon ?(storms = []) () =
  {
    Fleet.Monitor.default_config with
    Fleet.Monitor.tick = ms 200;
    budget = sec 2;
    recheck_budget = ms 500;
    lead = ms 600;
    storms;
  }

let monitored ?storms config =
  { config with Fleet.Driver.monitor = Some (fleet_mon ?storms ()) }

(* The committed BENCH_fleet.json scenario: an unmonitored run must keep
   producing the PR-9 fingerprint byte for byte — the monitor must be
   invisible when off (same prng draws, same trace, same hash). *)
let test_off_path_pinned () =
  let config, _ = Experiments.Fleet_exp.sharded_scenario ~seed:2015 `Default in
  let r = Fleet.Driver.run { config with Fleet.Driver.domains = 1 } in
  Alcotest.(check string)
    "trace digest matches committed BENCH_fleet.json"
    "2f2082eb061571e544b283f0fa169f44cc9ab03023a5ae1f8bb9f784682b37d2"
    r.Fleet.Driver.trace_digest;
  Alcotest.(check string)
    "fingerprint matches committed BENCH_fleet.json"
    "2294c57f77224268f84657ddb47b021b3803fca064eba27934219bb9343ca2a7"
    (Fleet.Driver.fingerprint r)

let test_off_fields_zero () =
  let r = Fleet.Driver.run fleet_base in
  Alcotest.(check int) "no probes" 0 r.Fleet.Driver.mon_scheduled;
  Alcotest.(check int) "no serves" 0 r.Fleet.Driver.mon_served;
  Alcotest.(check int) "no ticks" 0 r.Fleet.Driver.mon_ticks;
  Alcotest.(check int) "no entries" 0 r.Fleet.Driver.mon_entries;
  Alcotest.(check bool) "no storm outcomes" true (r.Fleet.Driver.mon_storms = []);
  Alcotest.(check (float 0.0)) "fresh series empty" 0.0 r.Fleet.Driver.mon_fresh_mean

let storm_list =
  [
    Fleet.Monitor.Rack_compromise { at = sec 1; cluster = 1 };
    Fleet.Monitor.Image_cve
      { at = sec 2; property = Core.Property.Runtime_integrity };
    Fleet.Monitor.Migration_wave { at = ms 2500; count = 30 };
  ]

let test_domains_identical () =
  let config = monitored ~storms:storm_list fleet_base in
  let r1 = Fleet.Driver.run { config with Fleet.Driver.domains = 1 } in
  let r2 = Fleet.Driver.run { config with Fleet.Driver.domains = 2 } in
  let r3 = Fleet.Driver.run { config with Fleet.Driver.domains = 3 } in
  Alcotest.(check string)
    "monitored fingerprint: domains 1 = 2"
    (Fleet.Driver.fingerprint r1)
    (Fleet.Driver.fingerprint r2);
  Alcotest.(check string)
    "monitored fingerprint: domains 1 = 3"
    (Fleet.Driver.fingerprint r1)
    (Fleet.Driver.fingerprint r3)

let test_deterministic () =
  let config = monitored ~storms:storm_list fleet_base in
  let r1 = Fleet.Driver.run config in
  let r2 = Fleet.Driver.run config in
  Alcotest.(check bool) "equal configs, equal monitored results" true (r1 = r2)

let test_conservation () =
  (* Starve the clusters so probes actually shed, then check the ledger:
     every scheduled probe lands in exactly one bucket. *)
  let config =
    monitored
      {
        fleet_base with
        Fleet.Driver.as_capacity = 1;
        queue_depth = 3;
        rate_per_s = 20.0;
      }
  in
  let r = Fleet.Driver.run config in
  Alcotest.(check bool) "probes were scheduled" true (r.Fleet.Driver.mon_scheduled > 0);
  Alcotest.(check int) "scheduled = served + missed + shed"
    r.Fleet.Driver.mon_scheduled
    (r.Fleet.Driver.mon_served + r.Fleet.Driver.mon_missed_periodic
   + r.Fleet.Driver.mon_missed_recheck + r.Fleet.Driver.mon_shed)

let test_freshness_slo () =
  let r = Fleet.Driver.run (monitored fleet_base) in
  Alcotest.(check bool) "scheduler ticked" true (r.Fleet.Driver.mon_ticks >= 15);
  Alcotest.(check bool) "every VM tracked" true
    (r.Fleet.Driver.mon_entries = fleet_base.Fleet.Driver.vms);
  Alcotest.(check bool) "fresh fractions are fractions" true
    (r.Fleet.Driver.mon_fresh_min >= 0.0
    && r.Fleet.Driver.mon_fresh_min <= r.Fleet.Driver.mon_fresh_mean
    && r.Fleet.Driver.mon_fresh_mean <= 1.0);
  (* By the end of a fault-free run the steady-state cycle keeps most of
     the fleet inside its freshness budget. *)
  Alcotest.(check bool) "most of the fleet ends fresh" true
    (r.Fleet.Driver.mon_fresh_final >= 0.5)

let test_cache_dedup_driver () =
  (* TTL (5s) comfortably covers the budget (2s): each probe's own cached
     verdict answers the early due-window checks of the next cycle. *)
  let r = Fleet.Driver.run (monitored fleet_base) in
  Alcotest.(check bool) "cached verdicts deduplicated probes" true
    (r.Fleet.Driver.mon_dedups > 0)

let storm_outcome r name =
  match
    List.find_opt
      (fun o -> String.equal o.Fleet.Driver.storm name)
      r.Fleet.Driver.mon_storms
  with
  | Some o -> o
  | None -> Alcotest.failf "no %s outcome" name

let test_rack_storm_detected () =
  let storms = [ Fleet.Monitor.Rack_compromise { at = sec 1; cluster = 1 } ] in
  let r = Fleet.Driver.run (monitored ~storms fleet_base) in
  let o = storm_outcome r "rack-compromise" in
  Alcotest.(check bool) "storm hit some VMs" true (o.Fleet.Driver.affected > 0);
  (match o.Fleet.Driver.detected_at with
  | None -> Alcotest.fail "planted compromise never detected"
  | Some t ->
      Alcotest.(check bool) "detected after the storm" true (t >= sec 1);
      (* The ISSUE's SLO: within two scheduler periods (freshness
         budgets) of the plant. *)
      Alcotest.(check bool) "detected within two budgets" true
        (t - sec 1 <= 2 * sec 2));
  Alcotest.(check bool) "compromised measurements surfaced" true
    (r.Fleet.Driver.unhealthy > 0)

let test_cve_storm_forces_all () =
  let storms =
    [
      Fleet.Monitor.Image_cve
        { at = sec 1; property = Core.Property.Runtime_integrity };
    ]
  in
  let with_storm = Fleet.Driver.run (monitored ~storms fleet_base) in
  let without = Fleet.Driver.run (monitored fleet_base) in
  let o = storm_outcome with_storm "image-cve" in
  Alcotest.(check int) "every tracked VM forced"
    fleet_base.Fleet.Driver.vms o.Fleet.Driver.affected;
  Alcotest.(check bool) "no detection timestamp for a recheck storm" true
    (o.Fleet.Driver.detected_at = None);
  Alcotest.(check bool) "recheck storm scheduled extra probes" true
    (with_storm.Fleet.Driver.mon_scheduled > without.Fleet.Driver.mon_scheduled)

let test_migration_wave () =
  let storms = [ Fleet.Monitor.Migration_wave { at = sec 1; count = 30 } ] in
  let with_storm = Fleet.Driver.run (monitored ~storms fleet_base) in
  let without = Fleet.Driver.run (monitored fleet_base) in
  let o = storm_outcome with_storm "migration-wave" in
  Alcotest.(check bool) "wave migrated some VMs" true (o.Fleet.Driver.affected > 0);
  (* Periodic churn is time-driven, so the wave's extra migrations add
     exactly its affected count on top of the baseline run's. *)
  Alcotest.(check int) "wave adds exactly its affected count"
    (without.Fleet.Driver.migrations + o.Fleet.Driver.affected)
    with_storm.Fleet.Driver.migrations

(* The latent-bug class this PR regression-tests: a VM migrating
   mid-epoch must be rescheduled on its new serving shard exactly once —
   no double-schedule, no orphan.  Census: after a churn-heavy monitored
   run every VM is tracked exactly once across all shards. *)
let test_churn_exactly_once () =
  let config =
    monitored
      {
        fleet_base with
        Fleet.Driver.churn_period = ms 100;
        as_count = 4;
        seed = 23;
      }
  in
  let r = Fleet.Driver.run config in
  Alcotest.(check bool) "churn actually happened" true
    (r.Fleet.Driver.migrations > 10);
  Alcotest.(check int) "every VM tracked exactly once"
    config.Fleet.Driver.vms r.Fleet.Driver.mon_entries;
  Alcotest.(check int) "no double-tracking events" 0
    r.Fleet.Driver.mon_entry_dups

(* ---------------------------------------------------------------- *)
(* QCheck model: Fleet.Pqueue vs a sorted-list oracle                 *)
(* ---------------------------------------------------------------- *)

(* Oracle state: (rank, insertion seq, payload) triples, no ordering
   invariant — the ops recompute everything from scratch. *)
type mq = { depth : int; mutable items : (int * int * int) list; mutable seq : int }

let m_create depth = { depth; items = []; seq = 0 }

let m_push m r v =
  if List.length m.items < m.depth then begin
    m.items <- m.items @ [ (r, m.seq, v) ];
    m.seq <- m.seq + 1;
    `Enqueued
  end
  else
    let lower = List.filter (fun (r', _, _) -> r' > r) m.items in
    if lower = [] then `Rejected
    else begin
      (* Shed from the lowest class present (highest rank), oldest first. *)
      let worst = List.fold_left (fun acc (r', _, _) -> max acc r') (-1) lower in
      let victim =
        List.fold_left
          (fun acc ((r', s, _) as e) ->
            if r' <> worst then acc
            else
              match acc with
              | Some (_, s0, _) when s0 <= s -> acc
              | _ -> Some e)
          None m.items
      in
      match victim with
      | None -> assert false
      | Some ((vr, _, vv) as ve) ->
          m.items <- List.filter (fun e -> e <> ve) m.items;
          m.items <- m.items @ [ (r, m.seq, v) ];
          m.seq <- m.seq + 1;
          `Evicted (vr, vv)
    end

let m_pop m =
  let best =
    List.fold_left
      (fun acc ((r, s, _) as e) ->
        match acc with
        | Some (r0, s0, _) when (r0, s0) <= (r, s) -> acc
        | _ -> Some e)
      None m.items
  in
  match best with
  | None -> None
  | Some ((r, _, v) as e) ->
      m.items <- List.filter (fun x -> x <> e) m.items;
      Some (r, v)

let prio_of_rank = function
  | 0 -> Fleet.Pqueue.Customer
  | 1 -> Fleet.Pqueue.Periodic
  | _ -> Fleet.Pqueue.Recheck

let pqueue_ops_gen =
  QCheck.Gen.(
    pair (int_range 1 5)
      (list_size (int_range 0 80)
         (frequency
            [
              ( 3,
                map2 (fun p v -> `Push (p, v)) (int_range 0 2) (int_range 0 999) );
              (2, return `Pop);
            ])))

let pqueue_model_test =
  QCheck.Test.make ~name:"pqueue agrees with sorted-list oracle" ~count:300
    (QCheck.make pqueue_ops_gen) (fun (depth, ops) ->
      let q = Fleet.Pqueue.create ~depth in
      let m = m_create depth in
      List.for_all
        (fun op ->
          match op with
          | `Push (pi, v) ->
              let pr = prio_of_rank pi in
              let got = Fleet.Pqueue.push q pr v in
              let want = m_push m (Fleet.Pqueue.rank pr) v in
              (match (got, want) with
              | Fleet.Pqueue.Enqueued, `Enqueued -> true
              | Fleet.Pqueue.Rejected, `Rejected -> true
              | Fleet.Pqueue.Evicted (p', v'), `Evicted (r', v'') ->
                  Fleet.Pqueue.rank p' = r' && v' = v''
              | _ -> false)
              && Fleet.Pqueue.length q = List.length m.items
          | `Pop -> (
              match (Fleet.Pqueue.pop q, m_pop m) with
              | None, None -> true
              | Some (p, v), Some (r, v') -> Fleet.Pqueue.rank p = r && v = v'
              | _ -> false))
        ops
      && List.for_all
           (fun pr ->
             Fleet.Pqueue.length_of q pr
             = List.length
                 (List.filter (fun (r, _, _) -> r = Fleet.Pqueue.rank pr) m.items))
           Fleet.Pqueue.all_priorities)

(* ---------------------------------------------------------------- *)
(* QCheck model: Core.Verdict_cache TTL/invalidation lifecycle        *)
(* ---------------------------------------------------------------- *)

let cache_ops_gen =
  QCheck.Gen.(
    pair
      (oneofl [ 0; ms 100; ms 250 ])
      (list_size (int_range 0 60)
         (frequency
            [
              ( 3,
                map3
                  (fun v p h -> `Store (v, p, h))
                  (int_range 0 2) (int_range 0 1) bool );
              (3, map2 (fun v p -> `Find (v, p)) (int_range 0 2) (int_range 0 1));
              (2, map (fun d -> `Advance d) (int_range 0 (ms 120)));
              (1, map (fun v -> `Inv_vm v) (int_range 0 2));
              ( 1,
                map2 (fun v p -> `Inv (v, p)) (int_range 0 2) (int_range 0 1) );
            ])))

let cache_model_test =
  QCheck.Test.make ~name:"verdict cache agrees with TTL model" ~count:300
    (QCheck.make cache_ops_gen) (fun (ttl, ops) ->
      let vid i = Printf.sprintf "vm-%d" i in
      let prop = function
        | 0 -> Core.Property.Runtime_integrity
        | _ -> Core.Property.Startup_integrity
      in
      let now = ref 0 in
      let c = Core.Verdict_cache.create ~ttl ~clock:(fun () -> !now) () in
      (* Model: key -> expiry time.  Expired entries linger until a find
         drops them, exactly like the lazy real cache. *)
      let model : (int * int, int) Hashtbl.t = Hashtbl.create 8 in
      List.for_all
        (fun op ->
          match op with
          | `Advance d ->
              now := !now + d;
              true
          | `Store (v, p, healthy) ->
              let status =
                if healthy then Core.Report.Healthy
                else Core.Report.Compromised "model"
              in
              let report =
                {
                  Core.Report.vid = vid v;
                  property = prop p;
                  status;
                  evidence = "model";
                  produced_at = !now;
                }
              in
              let stored = Core.Verdict_cache.store c report in
              let should = ttl > 0 && healthy in
              if should then Hashtbl.replace model (v, p) (!now + ttl);
              stored = should
          | `Find (v, p) ->
              let got = Core.Verdict_cache.find c ~vid:(vid v) ~property:(prop p) in
              let want =
                ttl > 0
                &&
                match Hashtbl.find_opt model (v, p) with
                | Some e when e > !now -> true
                | Some _ ->
                    Hashtbl.remove model (v, p);
                    false
                | None -> false
              in
              Option.is_some got = want
          | `Inv (v, p) ->
              let got =
                Core.Verdict_cache.invalidate c ~vid:(vid v) ~property:(prop p)
              in
              let want = Hashtbl.mem model (v, p) in
              Hashtbl.remove model (v, p);
              got = want
          | `Inv_vm v ->
              let got = Core.Verdict_cache.invalidate_vm c ~vid:(vid v) in
              let mine =
                Hashtbl.fold
                  (fun (v', p) _ acc -> if v' = v then (v', p) :: acc else acc)
                  model []
              in
              List.iter (Hashtbl.remove model) mine;
              got = List.length mine)
        ops
      && Core.Verdict_cache.size c = Hashtbl.length model)

(* ---------------------------------------------------------------- *)

(* The bench experiment's own gate at smoke scale: the domain curve must
   fingerprint-coincide, the planted rack compromise must be detected
   within two re-attestation periods, and the fresh-SLO series must be
   nonzero — the same predicate CI turns into an exit status. *)
let test_exp_smoke_clean () =
  let r = Experiments.Monitor_exp.run ~seed:2015 ~scale:`Smoke () in
  Alcotest.(check bool) "identical across domains" true
    (Experiments.Monitor_exp.identical_across_domains r);
  Alcotest.(check bool) "clean" true (Experiments.Monitor_exp.clean r)

(* Two runs of the experiment must produce byte-identical artifacts once
   the host wall-clock fields are dropped. *)
let test_exp_json_deterministic () =
  let a = Experiments.Monitor_exp.run ~seed:7 ~scale:`Smoke () in
  let b = Experiments.Monitor_exp.run ~seed:7 ~scale:`Smoke () in
  Alcotest.(check string) "same artifact"
    (Experiments.Json.to_string (Experiments.Monitor_exp.to_json ~host:false a))
    (Experiments.Json.to_string (Experiments.Monitor_exp.to_json ~host:false b))

let () =
  Alcotest.run "monitor"
    [
      ( "scheduler",
        [
          Alcotest.test_case "add/remove" `Quick test_add_remove;
          Alcotest.test_case "tick order and inflight" `Quick test_tick_order;
          Alcotest.test_case "serve rearms" `Quick test_complete_rearms;
          Alcotest.test_case "shed retries" `Quick test_shed_retries;
          Alcotest.test_case "cache dedup" `Quick test_cache_dedup;
          Alcotest.test_case "stale token" `Quick test_stale_token;
          Alcotest.test_case "force_all" `Quick test_force_all;
          Alcotest.test_case "due storms" `Quick test_due_storms;
        ] );
      ( "driver",
        [
          Alcotest.test_case "off: pinned fleet fingerprint" `Quick
            test_off_path_pinned;
          Alcotest.test_case "off: monitor fields zero" `Quick
            test_off_fields_zero;
          Alcotest.test_case "on: domains byte-identical" `Quick
            test_domains_identical;
          Alcotest.test_case "on: deterministic" `Quick test_deterministic;
          Alcotest.test_case "on: probe conservation" `Quick test_conservation;
          Alcotest.test_case "on: freshness SLO" `Quick test_freshness_slo;
          Alcotest.test_case "on: cache dedups probes" `Quick
            test_cache_dedup_driver;
          Alcotest.test_case "storm: rack compromise detected" `Quick
            test_rack_storm_detected;
          Alcotest.test_case "storm: image CVE forces all" `Quick
            test_cve_storm_forces_all;
          Alcotest.test_case "storm: migration wave" `Quick test_migration_wave;
          Alcotest.test_case "churn: exactly-once reschedule" `Quick
            test_churn_exactly_once;
        ] );
      ( "experiment",
        [
          Alcotest.test_case "smoke sweep clean" `Quick test_exp_smoke_clean;
          Alcotest.test_case "artifact deterministic" `Quick
            test_exp_json_deterministic;
        ] );
      ( "models",
        [ qtest pqueue_model_test; qtest cache_model_test ] );
    ]
