lib/workloads/spec.mli: Hypervisor Sim
