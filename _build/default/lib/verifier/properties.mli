(** The security properties of paper section 7.2.2, checked against the
    symbolic model.

    Secrecy (1)-(2), integrity (3) and authentication (4)-(6) as the paper
    numbers them, plus an explicit freshness check for the replay
    protection the three nonces provide.  Integrity and freshness are
    bounded checks: the attacker's candidate forgeries are the structurally
    accepting terms (wrong measurement, wrong report, foreign signing key,
    cross-session replay), each tested for derivability from the saturated
    knowledge. *)

type outcome = Holds | Violated of string

type check = { id : string; name : string; outcome : outcome }

val run : Model.variant -> check list
(** Evaluate every check against a protocol variant. *)

val holds : check list -> bool
(** All checks hold. *)

val find : check list -> string -> check option

val pp_check : Format.formatter -> check -> unit

val check_ids : string list
(** All check ids, in report order. *)
