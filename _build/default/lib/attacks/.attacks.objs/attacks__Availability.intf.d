lib/attacks/availability.mli: Hypervisor Sim
