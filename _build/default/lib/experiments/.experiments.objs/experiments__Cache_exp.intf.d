lib/experiments/cache_exp.mli: Core
