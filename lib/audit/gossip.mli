(** STH gossip over the simulated network.

    Tree heads travel as standalone signed datagrams through
    {!Net.Network}, which puts them in reach of the Dolev-Yao adversary
    position and the {!Net.Fault} adversaries: a garbled head fails its
    signature check (or does not decode) and is ignored; a dropped head
    misses one round and is re-sent at the next cadence, so message loss
    delays detection by at most one gossip interval — it never prevents
    it. *)

val address : string -> string
(** Network address of an auditor's gossip port. *)

val register : Net.Network.t -> Auditor.t -> unit
(** Install the auditor's gossip handler: decodes incoming heads and feeds
    them to {!Auditor.note}; undecodable payloads are dropped silently. *)

val announce : Net.Network.t -> src:string -> dst:string -> Sth.t -> unit
(** Send one head to a peer auditor (by auditor name), fire-and-forget. *)

val broadcast : Net.Network.t -> Auditor.t -> dst:string -> unit
(** Send every trusted head to a peer auditor (by auditor name). *)
