type status = Healthy | Compromised of string | Unknown of string

type t = {
  vid : string;
  property : Property.t;
  status : status;
  evidence : string;
  produced_at : Sim.Time.t;
}

let is_healthy t = t.status = Healthy

let pp_status ppf = function
  | Healthy -> Format.pp_print_string ppf "HEALTHY"
  | Compromised why -> Format.fprintf ppf "COMPROMISED (%s)" why
  | Unknown why -> Format.fprintf ppf "UNKNOWN (%s)" why

let pp ppf t =
  Format.fprintf ppf "report{vm=%s, %a: %a}" t.vid Property.pp t.property pp_status t.status

module Codec = Wire.Codec

let encode e t =
  Codec.Enc.str e t.vid;
  Property.encode e t.property;
  (match t.status with
  | Healthy -> Codec.Enc.u8 e 0
  | Compromised why ->
      Codec.Enc.u8 e 1;
      Codec.Enc.str e why
  | Unknown why ->
      Codec.Enc.u8 e 2;
      Codec.Enc.str e why);
  Codec.Enc.str e t.evidence;
  Codec.Enc.int e t.produced_at

let decode d =
  let vid = Codec.Dec.str d in
  let property = Property.decode d in
  let status =
    match Codec.Dec.u8 d with
    | 0 -> Healthy
    | 1 -> Compromised (Codec.Dec.str d)
    | 2 -> Unknown (Codec.Dec.str d)
    | _ -> raise (Codec.Error "bad report status")
  in
  let evidence = Codec.Dec.str d in
  let produced_at = Codec.Dec.int d in
  { vid; property; status; evidence; produced_at }
