type t = { name : string; work : Sim.Time.t }

(* Solo run times; only ratios matter for the relative-time figures. *)
let bzip2 = { name = "bzip2"; work = Sim.Time.ms 2000 }
let hmmer = { name = "hmmer"; work = Sim.Time.ms 2600 }
let astar = { name = "astar"; work = Sim.Time.ms 2200 }

let all = [ bzip2; hmmer; astar ]

let program b ~on_done () =
  Hypervisor.Program.compute_total ~chunk:(Sim.Time.ms 1) ~total:b.work ~on_done ()

let vm ~vid ~owner b ~on_done =
  Hypervisor.Vm.make ~vid ~owner ~image:Hypervisor.Image.cirros
    ~flavor:Hypervisor.Flavor.small
    ~programs:(fun () -> [ program b ~on_done () ])
    ()
