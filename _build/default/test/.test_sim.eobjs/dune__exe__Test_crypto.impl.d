test/test_crypto.ml: Alcotest Bytes Char Crypto Lazy List Printf QCheck QCheck_alcotest String
