(** VM disk images.

    An image carries simulated content whose SHA-256 is its integrity
    measurement.  The evaluation uses the paper's three images with sizes
    chosen to reproduce the relative spawning costs of Figure 9. *)

type t

val make : name:string -> size_mb:int -> t
(** Pristine image with deterministic content derived from its name. *)

val name : t -> string
val size_mb : t -> int

val hash : t -> string
(** SHA-256 of the current content. *)

val tamper : t -> payload:string -> t
(** A copy with malware inserted: same name and size, different hash. *)

val is_pristine : t -> bool
(** Whether the content still matches the pristine content for this name. *)

val cirros : t
val fedora : t
val ubuntu : t

val golden_hash : name:string -> string
(** The hash of the pristine image with this name — what an appraiser's
    reference database stores. *)
