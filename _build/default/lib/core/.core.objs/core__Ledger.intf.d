lib/core/ledger.mli: Format Sim
