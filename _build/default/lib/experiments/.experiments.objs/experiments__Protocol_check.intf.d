lib/experiments/protocol_check.mli: Verifier
