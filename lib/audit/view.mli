(** A log as seen by one observer.

    Auditors never touch {!Log.t} directly; they query a [t], a record of
    closures standing for "whatever the log operator chooses to answer".
    An honest operator answers from its single log ({!of_log}); a
    malicious one can answer different observers from different histories
    — the adversaries below build exactly those split faces, signed with
    the operator's real key, so detection must come from the Merkle
    consistency invariants rather than signature checks. *)

type t = {
  log_id : string;
  latest_sth : unit -> Sth.t;
  consistency : old_size:int -> size:int -> string list;
  inclusion : size:int -> int -> Crypto.Merkle.proof;
  entry : int -> string option;
}

val of_log : Log.t -> t
(** The honest face: answers from the log itself (signing an initial head
    on first query if none exists yet). *)

(** {1 Adversarial faces} *)

type fork = {
  face_a : t;  (** history shown to observer A *)
  face_b : t;  (** history shown to observer B *)
  log_a : Log.t;
  log_b : Log.t;
  append_both : string -> unit;  (** extend the shared prefix *)
  append_a : string -> unit;  (** diverge: entry visible only to A *)
  append_b : string -> unit;  (** diverge: entry visible only to B *)
}

val fork :
  log_id:string -> key:Crypto.Rsa.secret -> ?clock:(unit -> Sim.Time.t) -> unit -> fork
(** A split-view/equivocation adversary: one log identity, one signing
    key, two divergent histories.  Dropping an entry from one face only
    ([append_a] without [append_b]) models the entry-suppressing
    adversary. *)

val stale : t -> sth:Sth.t -> t
(** A rollback adversary: serves [sth] (an old, genuinely signed head) as
    the latest forever, hiding everything appended since. *)
