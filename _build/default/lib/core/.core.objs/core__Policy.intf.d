lib/core/policy.mli: Database Hypervisor Property
