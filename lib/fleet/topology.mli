(** Fleet topology: hundreds of cloud servers running thousands of VMs,
    partitioned into Attestation-Server clusters (paper section 3.2.3: "There
    can be different Attestation Servers for different clusters, enabling
    scalability").

    The whole layout is generated deterministically from a seed, so a fleet
    run is reproducible bit-for-bit.  The [routing] table is the controller's
    host -> AS-cluster map; VM placement can change at runtime ({!migrate}),
    modelling the lifecycle churn that invalidates cached verdicts.

    Each VM also records its [home] cluster — the cluster of its initial
    placement — which the sharded driver uses as the VM's owning shard:
    requests for a VM are generated and accounted on its home shard for the
    whole run, even after migrations move its serving cluster elsewhere.
    Home assignment is placement-derived, so the shard partition is a pure
    function of the seed and is identical however many domains execute it. *)

type server = { name : string; cluster : int }

type vm = {
  idx : int;  (** position in {!vms}; [idx < hot] marks the hot set *)
  vid : string;
  owner : string;
  home : int;  (** cluster of initial placement; never changes *)
  mutable host : string;  (** current placement; changes on {!migrate} *)
}

type t

val make : seed:int -> servers:int -> vms:int -> as_count:int -> t
(** Servers are named [srv-0001].. and assigned to the [as_count] clusters
    round-robin; VMs are placed uniformly at random (from [seed]). *)

val seed : t -> int
val as_count : t -> int
val servers : t -> server array
val vms : t -> vm array

val cluster_of : t -> string -> int
(** Routing-table lookup: which AS cluster serves this host.  Unknown hosts
    route to cluster 0, like {!Core.Controller}'s fallback. *)

val cluster_of_vm : t -> vm -> int

val home_slices : t -> vm array array
(** [home_slices t] partitions the fleet by home cluster; slice [c] holds
    the VMs with [home = c], in [idx] order.  A slice may be empty. *)

val pick_vm : t -> Sim.Prng.t -> ?hot:int -> ?hot_p:float -> unit -> vm
(** Sample a VM for an arriving attestation request.  With probability
    [hot_p] (default 0) the VM comes from the first [hot] VMs (default 0 =
    whole fleet), modelling the skewed access pattern of monitored tenants;
    otherwise uniform over the whole fleet. *)

val pick_among :
  Sim.Prng.t -> pool:vm array -> hot:vm array -> hot_p:float -> vm
(** Shard-local variant of {!pick_vm}: sample from [pool], biased towards
    the [hot] subset with probability [hot_p] when [hot] is non-empty.
    [pool] must be non-empty. *)

val migrate : t -> Sim.Prng.t -> vm -> string
(** Re-place [vm] on a different random server; returns the new host. *)
