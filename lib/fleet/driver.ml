type config = {
  seed : int;
  servers : int;
  vms : int;
  as_count : int;
  as_capacity : int;
  queue_depth : int;
  ttl : Sim.Time.t;
  rate_per_s : float;
  duration : Sim.Time.t;
  drain : Sim.Time.t;
  unhealthy_p : float;
  churn_period : Sim.Time.t;
  hot_vms : int;
  hot_p : float;
  customer_p : float;
  periodic_p : float;
  batch_max : int;
  batch_window : Sim.Time.t;
  audit_checkpoint : Sim.Time.t;
      (* transparency-log STH interval; 0 (the default) = audit off *)
  backends : Tpm.Backend.kind array;
      (* trust backend per AS cluster, cluster i running backends.(i mod len) *)
  domains : int;
      (* OCaml domains executing the shards; results are independent of it *)
  epoch : Sim.Time.t;
      (* barrier interval for cross-shard message exchange *)
  monitor : Monitor.config option;
      (* continuous re-attestation scheduler; None (the default) = off,
         byte-identical to the unmonitored driver *)
}

let default_config =
  {
    seed = 2015;
    servers = 200;
    vms = 2000;
    as_count = 1;
    as_capacity = 1;
    queue_depth = 16;
    ttl = 0;
    rate_per_s = 8.0;
    duration = Sim.Time.sec 30;
    drain = Sim.Time.sec 30;
    unhealthy_p = 0.05;
    churn_period = Sim.Time.sec 5;
    hot_vms = 64;
    hot_p = 0.8;
    customer_p = 0.2;
    periodic_p = 0.7;
    batch_max = 1;
    batch_window = 0;
    audit_checkpoint = 0;
    backends = [| Tpm.Backend.Classic |];
    domains = 1;
    epoch = Sim.Time.ms 50;
    monitor = None;
  }

type storm_outcome = {
  storm : string;
  at : Sim.Time.t;
  affected : int;
  detected_at : Sim.Time.t option;
}

type result = {
  config : config;
  offered : int;
  served : int;
  shed_customer : int;
  shed_periodic : int;
  shed_recheck : int;
  coalesced : int;
  measurements : int;
  unhealthy : int;
  cache_hits : int;
  cache_hit_rate : float;
  invalidations : int;
  migrations : int;
  offered_rps : float;
  served_rps : float;
  mean_ms : float;
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;
  max_queue_depth : int;
  mean_queue_depth : float;
  batches : int;
  mean_batch_size : float;
  audit_appends : int;
  audit_checkpoints : int;
  audit_proofs : int;
  audit_equivocations : int;
  served_by_backend : (string * int) list;
      (** cluster-served requests per backend kind, for each kind the config
          places (cache hits never reach a cluster and are not attributed) *)
  epochs : int;
  verify_memo : (int * int) array;
      (** per-domain (hits, misses) of the RSA verify memo, slot order;
          excluded from {!fingerprint} (the split depends on [domains]) *)
  (* Continuous-monitoring results; all zero / empty with the monitor off
     (and only then excluded from the fingerprint). *)
  mon_scheduled : int;
  mon_served : int;
  mon_missed_periodic : int;
  mon_missed_recheck : int;
  mon_shed : int;
  mon_dedups : int;
  mon_ticks : int;
  mon_entries : int;
  mon_entry_dups : int;
  mon_fresh_min : float;
  mon_fresh_mean : float;
  mon_fresh_final : float;
  mon_storms : storm_outcome list;
  trace_digest : string;
}

(* --- Cost model, anchored to lib/core's calibrated ledger constants ------ *)

(* Fleet clusters span racks, so a wire leg costs more than the single-rack
   LAN model in lib/net; the crypto and measurement terms are exactly the
   ones the real attestation path charges to its ledger. *)
let wire_leg = Sim.Time.ms 12

(* AS-side occupancy of one measurement round: collect from the cloud
   server (two legs), interpret, sign the quoted report. *)
let cold_service_base =
  (2 * wire_leg) + Core.Costs.measurement_collect + Core.Costs.interpret
  + Core.Costs.quote_sign + Core.Costs.signature_verify

(* Per-backend variant: swap the quote-signing term for the backend's own,
   and charge the CVM platform-chain walk on top of the signature check.
   [Classic] reduces to exactly [cold_service_base]. *)
let cold_service_base_for kind =
  (2 * wire_leg) + Core.Costs.measurement_collect + Core.Costs.interpret
  + Core.Costs.quote_sign_for kind + Core.Costs.signature_verify
  + (match kind with
    | Tpm.Backend.Cvm_report -> Core.Costs.cvm_chain_verify
    | Tpm.Backend.Classic | Tpm.Backend.Evtpm -> 0)

(* Controller-side work around a cold round: route lookup, two legs to the
   AS, verify the AS signature, re-sign for the customer.  Adds latency but
   does not occupy an AS slot. *)
let controller_overhead =
  (2 * wire_leg) + Core.Costs.db_lookup + Core.Costs.signature_verify
  + Core.Costs.report_sign

(* A verdict-cache hit never leaves the serving shard's controller
   partition: database lookup plus re-signing the cached report under the
   fresh nonce — the same charges Controller.attest puts on its ledger for
   a hit. *)
let cache_hit_cost = Core.Costs.db_lookup + Core.Costs.report_sign

(* AS-side occupancy of one n-report batched round: the wire legs, quote
   signing and signature verification are paid once (the signature terms
   via the Merkle-batched costs from {!Core.Costs}), while collection and
   interpretation stay per report.  [n = 1] is exactly the unbatched
   round, so a batch of one costs what a lone request always did. *)
let batch_service_base_for kind n =
  if n <= 1 then cold_service_base_for kind
  else
    (2 * wire_leg)
    + (n * (Core.Costs.measurement_collect + Core.Costs.interpret))
    + (Core.Costs.batch_quote_cost_for ~batch:n kind - Core.Costs.session_keygen_for kind)
    + Core.Costs.batch_verify_cost ~batch:n
    + (match kind with
      | Tpm.Backend.Cvm_report -> Core.Costs.cvm_chain_verify
      | Tpm.Backend.Classic | Tpm.Backend.Evtpm -> 0)

let batch_service_base = batch_service_base_for Tpm.Backend.Classic

(* Per-verdict transparency-log work when auditing is on: the AS appends
   the signed report (O(log n) sibling hashes), signs a fresh tree head,
   serves the inclusion proof, and the controller verifies the receipt
   before accepting the verdict.  Pure latency — none of it occupies an
   AS measurement slot. *)
let audit_verdict_cost ~size =
  Core.Costs.audit_append ~size + Core.Costs.sth_sign + Core.Costs.audit_proof ~size
  + Core.Costs.audit_receipt_verify ~size

let audit_verdict_ms ~size = Sim.Time.to_ms (audit_verdict_cost ~size)

let cold_attest_ms = Sim.Time.to_ms (cold_service_base + controller_overhead)
let cache_hit_ms = Sim.Time.to_ms cache_hit_cost
let batch_attest_ms n = Sim.Time.to_ms (batch_service_base n + controller_overhead)

let properties = Array.of_list Core.Property.all

(* --- Sharded execution ---------------------------------------------------

   One shard per AS cluster.  A shard owns its cluster, engine (clock and
   event queue), verdict-cache partition, metrics, prng streams, audit log
   and the VMs whose *initial* placement was this cluster (their "home").
   The home shard generates a VM's arrivals and runs its lifecycle churn
   for the whole run; the shard of the VM's *current* host serves the
   requests and caches the verdicts.  When those differ, the home shard
   sends a {!Msg.Submit} instead of touching foreign state, and churn sends
   {!Msg.Invalidate} to the clusters the VM moved between.

   Shards never read or write each other's state inside an epoch, so any
   assignment of shards to domains executes the same per-shard event
   sequences; the barrier sorts the union of outboxes by (send time, source
   shard, send seq) — a total order that is itself a pure function of the
   per-shard sequences — making the merged run reproducible bit-for-bit at
   any domain count. *)

type shard = {
  index : int;
  engine : Sim.Engine.t;
  metrics : Metrics.t;
  cache : Core.Verdict_cache.t;
  cluster : Cluster.t;
  pick_prng : Sim.Prng.t;
  churn_prng : Sim.Prng.t;
  my_vms : Topology.vm array;  (* home slice, idx order *)
  my_hot : Topology.vm array;  (* home slice ∩ the fleet-wide hot set *)
  trace : Crypto.Sha256.ctx;
  mutable outbox : Msg.t list;  (* newest first; reversed at the barrier *)
  mutable out_seq : int;
  mutable migrations : int;
  served_by : int array;  (* by backend kind slot *)
  mutable audit_proofs_seen : int;
  mutable audit_evidence_seen : int;
  mon : Monitor.t option;  (* re-attestation scheduler (serving-side state) *)
  compromised : (string, int) Hashtbl.t;  (* vid -> storm index *)
  mon_detect : Sim.Time.t option array;  (* first Compromised seen, per storm *)
  mon_affected : int array;  (* VMs this shard marked/forced, per storm *)
  mutable mon_double_adds : int;  (* scheduler double-tracking events (bug) *)
}

let kind_slot = function
  | Tpm.Backend.Classic -> 0
  | Tpm.Backend.Evtpm -> 1
  | Tpm.Backend.Cvm_report -> 2

let run config =
  let topology =
    Topology.make ~seed:config.seed ~servers:config.servers ~vms:config.vms
      ~as_count:config.as_count
  in
  let shard_count = Topology.as_count topology in
  let horizon = config.duration + config.drain in
  let backend_of_cluster i =
    config.backends.(i mod max 1 (Array.length config.backends))
  in
  (* Every shard's five prng streams are split from the root on the main
     domain, in shard order, before anything runs — the stream assignment
     is part of the configuration, not of the execution schedule. *)
  let root = Sim.Prng.create (config.seed lxor 0x464c45) in
  let streams =
    let arr = Array.make shard_count (root, root, root, root, root) in
    for _s = 0 to shard_count - 1 do
      let arrival = Sim.Prng.split root in
      let pick = Sim.Prng.split root in
      let service = Sim.Prng.split root in
      let verdict = Sim.Prng.split root in
      let churn = Sim.Prng.split root in
      arr.(_s) <- (arrival, pick, service, verdict, churn)
    done;
    arr
  in
  let slices = Topology.home_slices topology in
  let n_storms =
    match config.monitor with
    | None -> 0
    | Some m -> List.length m.Monitor.storms
  in
  let audit_key =
    if config.audit_checkpoint <= 0 then None
    else
      Some
        (Crypto.Rsa.generate
           (Crypto.Drbg.create ~seed:("fleet-audit|" ^ string_of_int config.seed))
           ~bits:512)
          .Crypto.Rsa.secret
  in
  let arrival_prngs = Array.make shard_count root in
  let total_vms = Array.length (Topology.vms topology) in
  let make_shard s =
    let arrival, pick, service, verdict, churn = streams.(s) in
    arrival_prngs.(s) <- arrival;
    let engine = Sim.Engine.create () in
    let metrics = Metrics.create ~seed:(config.seed + s) () in
    let cache =
      Core.Verdict_cache.create ~ttl:config.ttl
        ~clock:(fun () -> Sim.Engine.now engine)
        ()
    in
    let kind = backend_of_cluster s in
    (* One jitter draw per round regardless of backend, so a heterogeneous
       fleet consumes the same PRNG stream as an all-classic one. *)
    let service_time () =
      (* +/-10% jitter around the ledger-derived base. *)
      let base = float_of_int (cold_service_base_for kind) in
      let f = 0.9 +. Sim.Prng.float service 0.2 in
      max 1 (int_of_float (base *. f))
    in
    (* One jitter draw per batched round, mirroring the unbatched one-draw-
       per-round discipline.  Never called when [batch_max = 1]. *)
    let batch_service_time n =
      let base = float_of_int (batch_service_base_for kind n) in
      let f = 0.9 +. Sim.Prng.float service 0.2 in
      max 1 (int_of_float (base *. f))
    in
    (* A rack-compromise storm marks VMs in [compromised]; their
       measurements observe it (the planted signal behind the
       time-to-detect SLO).  The verdict draw happens regardless, so an
       unmonitored run consumes the stream identically. *)
    let compromised = Hashtbl.create 16 in
    let mon_detect = Array.make n_storms None in
    let measure ~vid ~property:_ =
      let anomalous = Sim.Prng.float verdict 1.0 < config.unhealthy_p in
      match Hashtbl.find_opt compromised vid with
      | Some si ->
          if mon_detect.(si) = None then mon_detect.(si) <- Some (Sim.Engine.now engine);
          Core.Report.Compromised "planted rack compromise"
      | None ->
          if anomalous then Core.Report.Compromised "fleet-sim anomaly"
          else Core.Report.Healthy
    in
    let cluster =
      Cluster.create ~engine
        ~name:(Printf.sprintf "as-%d" (s + 1))
        ~capacity:config.as_capacity ~queue_depth:config.queue_depth
        ~service_time ~measure ~metrics ~batch_max:config.batch_max
        ~batch_window:config.batch_window ~batch_service_time ()
    in
    let my_vms = slices.(s) in
    let my_hot =
      Array.of_list
        (List.filter
           (fun vm -> vm.Topology.idx < config.hot_vms)
           (Array.to_list my_vms))
    in
    {
      index = s;
      engine;
      metrics;
      cache;
      cluster;
      pick_prng = pick;
      churn_prng = churn;
      my_vms;
      my_hot;
      trace = Crypto.Sha256.init ();
      outbox = [];
      out_seq = 0;
      migrations = 0;
      served_by = Array.make 3 0;
      audit_proofs_seen = 0;
      audit_evidence_seen = 0;
      mon = Option.map Monitor.create config.monitor;
      compromised;
      mon_detect;
      mon_affected = Array.make n_storms 0;
      mon_double_adds = 0;
    }
  in
  let shards = Array.init shard_count make_shard in
  let trace_line sh line =
    Crypto.Sha256.update sh.trace line;
    Crypto.Sha256.update sh.trace "\n"
  in
  let send sh ~dst payload =
    let m =
      {
        Msg.at = Sim.Engine.now sh.engine;
        src = sh.index;
        seq = sh.out_seq;
        dst;
        payload;
      }
    in
    sh.out_seq <- sh.out_seq + 1;
    sh.outbox <- m :: sh.outbox;
    trace_line sh ("m|" ^ Msg.encode m)
  in
  (* Exactly-once monitor rescheduling: churn emits one Mon_del to the old
     serving cluster and one Mon_add to the new one (locally or over the
     barrier), so a migrating VM's scheduler entry moves — never forks,
     never orphans.  A compromise mark travels along with it. *)
  let local_mon_del sh ~vid ~moved_to =
    (match Hashtbl.find_opt sh.compromised vid with
    | Some si when moved_to <> sh.index ->
        Hashtbl.remove sh.compromised vid;
        send sh ~dst:moved_to (Msg.Compromise { vid; storm = si })
    | Some _ | None -> ());
    match sh.mon with
    | Some mon -> ignore (Monitor.remove mon ~vid : bool)
    | None -> ()
  in
  let local_mon_add sh ~vid ~idx =
    match sh.mon with
    | None -> ()
    | Some mon ->
        let mcfg = Monitor.config mon in
        let deadline = Sim.Engine.now sh.engine + mcfg.Monitor.recheck_budget in
        if not (Monitor.add mon ~vid ~idx ~cls:Pqueue.Recheck ~deadline) then
          sh.mon_double_adds <- sh.mon_double_adds + 1
  in
  let priority_of sh =
    let x = Sim.Prng.float sh.pick_prng 1.0 in
    if x < config.customer_p then Pqueue.Customer
    else if x < config.customer_p +. config.periodic_p then Pqueue.Periodic
    else Pqueue.Recheck
  in
  let record_cache_hit sh ~vid =
    Metrics.record_cache_hit sh.metrics;
    Metrics.record_served sh.metrics ~latency_ms:(Sim.Time.to_ms cache_hit_cost);
    trace_line sh (Printf.sprintf "h|%d|%s" (Sim.Engine.now sh.engine) vid)
  in
  let submit_to_cluster sh ?(k = fun (_ : Cluster.verdict) -> ()) ~vid ~property
      ~priority ~arrived () =
    Cluster.submit sh.cluster ~vid ~property ~priority ~on_done:(fun verdict ->
      (match verdict with
      | Cluster.Shed ->
          (* the cluster recorded the shed *)
          trace_line sh (Printf.sprintf "x|%d|%s" (Sim.Engine.now sh.engine) vid)
      | Cluster.Done status ->
          let slot = kind_slot (backend_of_cluster sh.index) in
          sh.served_by.(slot) <- sh.served_by.(slot) + 1;
          (* The cluster appended this verdict just before delivering it,
             so the log size already covers the entry. *)
          let audit_latency =
            match Cluster.audit sh.cluster with
            | None -> 0
            | Some log ->
                Metrics.record_audit_proof sh.metrics;
                audit_verdict_cost ~size:(Audit.Log.size log)
          in
          let now = Sim.Engine.now sh.engine in
          let latency = now - arrived + controller_overhead + audit_latency in
          Metrics.record_served sh.metrics ~latency_ms:(Sim.Time.to_ms latency);
          trace_line sh (Printf.sprintf "s|%d|%s|%d" now vid latency);
          (match status with
          | Core.Report.Healthy ->
              ignore
                (Core.Verdict_cache.store sh.cache
                   {
                     Core.Report.vid;
                     property;
                     status;
                     evidence = "fleet measurement";
                     produced_at = now;
                   }
                  : bool)
          | Core.Report.Compromised _ | Core.Report.Unknown _ ->
              Metrics.record_unhealthy sh.metrics;
              ignore (Core.Verdict_cache.invalidate sh.cache ~vid ~property : bool)));
      k verdict)
  in
  let arrival sh () =
    Metrics.record_offered sh.metrics;
    let vm =
      Topology.pick_among sh.pick_prng ~pool:sh.my_vms ~hot:sh.my_hot
        ~hot_p:config.hot_p
    in
    let property = properties.(Sim.Prng.int sh.pick_prng (Array.length properties)) in
    let vid = vm.Topology.vid in
    let now = Sim.Engine.now sh.engine in
    trace_line sh
      (Printf.sprintf "a|%d|%s|%s" now vid (Core.Property.to_string property));
    let dst = Topology.cluster_of_vm topology vm in
    if dst = sh.index then
      match Core.Verdict_cache.find sh.cache ~vid ~property with
      | Some _ -> record_cache_hit sh ~vid
      | None ->
          (* Priority is drawn only on a miss, as the single-engine driver
             always did; the remote path below draws it at send time
             because the sender cannot see the destination's cache. *)
          submit_to_cluster sh ~vid ~property ~priority:(priority_of sh)
            ~arrived:now ()
    else
      send sh ~dst (Msg.Submit { vid; property; priority = priority_of sh; arrived = now })
  in
  let deliver sh (m : Msg.t) =
    trace_line sh ("d|" ^ Msg.encode m);
    match m.Msg.payload with
    | Msg.Submit { vid; property; priority; arrived } -> (
        match Core.Verdict_cache.find sh.cache ~vid ~property with
        | Some _ -> record_cache_hit sh ~vid
        | None -> submit_to_cluster sh ~vid ~property ~priority ~arrived ())
    | Msg.Invalidate { vid } ->
        ignore (Core.Verdict_cache.invalidate_vm sh.cache ~vid : int)
    | Msg.Mon_add { vid; idx } -> local_mon_add sh ~vid ~idx
    | Msg.Mon_del { vid; moved_to } -> local_mon_del sh ~vid ~moved_to
    | Msg.Compromise { vid; storm } -> Hashtbl.replace sh.compromised vid storm
  in
  let churn sh () =
    (* Lifecycle churn concentrates where the load is: hot VMs. *)
    let vm =
      Topology.pick_among sh.churn_prng ~pool:sh.my_vms ~hot:sh.my_hot ~hot_p:0.9
    in
    let old_cluster = Topology.cluster_of_vm topology vm in
    ignore (Topology.migrate topology sh.churn_prng vm : string);
    let new_cluster = Topology.cluster_of_vm topology vm in
    sh.migrations <- sh.migrations + 1;
    trace_line sh
      (Printf.sprintf "g|%d|%s|%d|%d" (Sim.Engine.now sh.engine) vm.Topology.vid
         old_cluster new_cluster);
    (* Cached verdicts live on the serving shard: drop them where the VM
       was, and defensively where it lands (a re-arrival there must
       re-measure, never resurrect a pre-migration verdict). *)
    let invalidate_at c =
      if c = sh.index then
        ignore (Core.Verdict_cache.invalidate_vm sh.cache ~vid:vm.Topology.vid : int)
      else send sh ~dst:c (Msg.Invalidate { vid = vm.Topology.vid })
    in
    invalidate_at old_cluster;
    if new_cluster <> old_cluster then invalidate_at new_cluster;
    (* Reschedule the VM's re-attestation on its new serving shard exactly
       once: one Mon_del at the old cluster, one Mon_add at the new (the
       rule DESIGN.md §17 states; the pair is emitted even when the VM
       stays in-cluster, so a post-migration recheck always happens). *)
    match sh.mon with
    | None -> ()
    | Some _ ->
        let vid = vm.Topology.vid in
        (if old_cluster = sh.index then local_mon_del sh ~vid ~moved_to:new_cluster
         else send sh ~dst:old_cluster (Msg.Mon_del { vid; moved_to = new_cluster }));
        if new_cluster = sh.index then local_mon_add sh ~vid ~idx:vm.Topology.idx
        else send sh ~dst:new_cluster (Msg.Mon_add { vid; idx = vm.Topology.idx })
  in
  (* One scheduler probe: a real cluster submission whose completion is
     classified against the deadline captured at submit time — so every
     scheduled probe lands in exactly one of served / missed / shed even
     if the entry migrates away mid-flight. *)
  let submit_probe sh mon (p : Monitor.probe) =
    let now = Sim.Engine.now sh.engine in
    Metrics.record_mon_scheduled sh.metrics p.Monitor.cls;
    trace_line sh
      (Printf.sprintf "p|%d|%s|%s|%d" now p.Monitor.vid
         (Core.Property.to_string p.Monitor.prop)
         (Pqueue.rank p.Monitor.cls));
    submit_to_cluster sh ~vid:p.Monitor.vid ~property:p.Monitor.prop
      ~priority:p.Monitor.cls ~arrived:now
      ~k:(fun verdict ->
        let done_at = Sim.Engine.now sh.engine in
        let served =
          match verdict with Cluster.Done _ -> true | Cluster.Shed -> false
        in
        (if not served then Metrics.record_mon_shed sh.metrics p.Monitor.cls
         else if done_at <= p.Monitor.deadline then
           Metrics.record_mon_served sh.metrics p.Monitor.cls
         else Metrics.record_mon_missed sh.metrics p.Monitor.cls);
        Monitor.complete mon p ~now:done_at ~served)
      ()
  in
  let process_storm sh mon si storm =
    let now = Sim.Engine.now sh.engine in
    match storm with
    | Monitor.Rack_compromise { at = _; cluster } ->
        (* Each home shard marks its own VMs currently hosted on the rack
           (it is the sole writer of their placement), telling the serving
           shard over the barrier when that is someone else. *)
        let n = ref 0 in
        Array.iter
          (fun vm ->
            if Topology.cluster_of_vm topology vm = cluster then begin
              incr n;
              let vid = vm.Topology.vid in
              if cluster = sh.index then Hashtbl.replace sh.compromised vid si
              else send sh ~dst:cluster (Msg.Compromise { vid; storm = si })
            end)
          sh.my_vms;
        sh.mon_affected.(si) <- sh.mon_affected.(si) + !n;
        trace_line sh (Printf.sprintf "w|%d|rack|%d|%d" now si !n)
    | Monitor.Image_cve { at = _; property } ->
        let vids = Monitor.force_all mon ~now ~cls:Pqueue.Recheck ~prop:property in
        List.iter
          (fun vid ->
            ignore (Core.Verdict_cache.invalidate sh.cache ~vid ~property : bool))
          vids;
        let n = List.length vids in
        sh.mon_affected.(si) <- sh.mon_affected.(si) + n;
        trace_line sh (Printf.sprintf "w|%d|cve|%d|%d" now si n)
    | Monitor.Migration_wave { at = _; count } ->
        let mine = Array.length sh.my_vms in
        let k = if mine = 0 then 0 else count * mine / total_vms in
        for _ = 1 to k do
          churn sh ()
        done;
        sh.mon_affected.(si) <- sh.mon_affected.(si) + k;
        trace_line sh (Printf.sprintf "w|%d|wave|%d|%d" now si k)
  in
  let mon_tick sh mon () =
    let mcfg = Monitor.config mon in
    let now = Sim.Engine.now sh.engine in
    (* Storms first, so their forced rechecks can probe this very tick. *)
    List.iter
      (fun (si, storm) -> process_storm sh mon si storm)
      (Monitor.due_storms mon ~now);
    let fresh_until ~vid ~prop =
      match Core.Verdict_cache.find sh.cache ~vid ~property:prop with
      | Some r ->
          let until = Monitor.fresh_until_of_report mcfg r in
          if until > now then Some until else None
      | None -> None
    in
    let { Monitor.probes; dedups; fresh; total } =
      Monitor.tick mon ~now ~fresh_until
    in
    List.iter
      (fun vid ->
        Metrics.record_mon_dedup sh.metrics;
        trace_line sh (Printf.sprintf "u|%d|%s" now vid))
      dedups;
    List.iter (fun p -> submit_probe sh mon p) probes;
    Metrics.record_mon_tick sh.metrics ~fresh ~total
  in
  (* Per-shard processes: arrivals at a rate proportional to the shard's
     share of the fleet (independent Poisson streams superpose to the
     configured total rate), and churn staggered so the fleet-wide
     migration cadence stays one per [churn_period]. *)
  Array.iter
    (fun sh ->
      (match audit_key with
      | None -> ()
      | Some key ->
          let log =
            Audit.Log.create ~log_id:(Cluster.name sh.cluster) ~key
              ~clock:(fun () -> Sim.Engine.now sh.engine)
              ()
          in
          Cluster.set_audit sh.cluster (Some log);
          let pub = Audit.Log.public_key log in
          let clock () = Sim.Engine.now sh.engine in
          let mk name = Audit.Auditor.create ~name ~key_of:(fun _ -> Some pub) ~clock () in
          let auditors =
            [|
              mk (Printf.sprintf "fleet-auditor-%d-a" (sh.index + 1));
              mk (Printf.sprintf "fleet-auditor-%d-b" (sh.index + 1));
            |]
          in
          let view = Audit.View.of_log log in
          ignore
            (Sim.Engine.every sh.engine ~period:config.audit_checkpoint
               ~until:horizon (fun () ->
                 ignore (Audit.Log.checkpoint log : Audit.Sth.t);
                 Metrics.record_audit_checkpoint sh.metrics;
                 Array.iter (fun a -> Audit.Auditor.observe a view) auditors;
                 Audit.Auditor.exchange auditors.(0) auditors.(1);
                 let proofs =
                   Array.fold_left
                     (fun acc a -> acc + Audit.Auditor.proofs_checked a)
                     0 auditors
                 in
                 for _ = sh.audit_proofs_seen + 1 to proofs do
                   Metrics.record_audit_proof sh.metrics
                 done;
                 sh.audit_proofs_seen <- proofs;
                 let evidence =
                   Array.fold_left
                     (fun acc a -> acc + Audit.Auditor.evidence_count a)
                     0 auditors
                 in
                 Metrics.record_audit_equivocations sh.metrics
                   (evidence - sh.audit_evidence_seen);
                 sh.audit_evidence_seen <- evidence)
              : Sim.Engine.handle));
      (match sh.mon with
      | None -> ()
      | Some mon ->
          let mcfg = Monitor.config mon in
          (* Initially every VM is served by its home cluster, so its
             entry starts here; first deadlines are staggered across the
             budget by fleet index, spreading the first monitoring cycle
             uniformly instead of thundering at t = budget. *)
          Array.iter
            (fun vm ->
              let deadline =
                mcfg.Monitor.budget * (vm.Topology.idx + 1) / total_vms
              in
              if
                not
                  (Monitor.add mon ~vid:vm.Topology.vid ~idx:vm.Topology.idx
                     ~cls:Pqueue.Periodic ~deadline)
              then sh.mon_double_adds <- sh.mon_double_adds + 1)
            sh.my_vms;
          (* Every shard ticks — even one with no home VMs tracks entries
             that migrate in — and at the same absolute times, keeping the
             per-shard fresh series index-aligned for the merge. *)
          if mcfg.Monitor.tick > 0 then
            ignore
              (Sim.Engine.every sh.engine ~period:mcfg.Monitor.tick
                 ~until:config.duration (mon_tick sh mon)
                : Sim.Engine.handle));
      let n_mine = Array.length sh.my_vms in
      if n_mine > 0 then begin
        let rate =
          config.rate_per_s *. float_of_int n_mine /. float_of_int total_vms
        in
        if rate > 0.0 then
          Load.poisson ~engine:sh.engine ~prng:arrival_prngs.(sh.index)
            ~rate_per_s:rate ~until:config.duration (arrival sh);
        if config.churn_period > 0 then begin
          let stride = config.churn_period * shard_count in
          let rec arm at =
            if at <= config.duration then
              ignore
                (Sim.Engine.schedule sh.engine ~at (fun () ->
                     churn sh ();
                     arm (at + stride))
                  : Sim.Engine.handle)
          in
          arm (config.churn_period * (sh.index + 1))
        end
      end)
    shards;
  (* Epoch-barrier loop.  Within an epoch every shard advances alone on its
     domain; at the barrier the main domain gathers the outboxes, imposes
     the (at, src, seq) total order, and schedules each message on its
     destination engine at the barrier time.  The loop keeps stepping past
     the arrival horizon until every queue is empty and no message is in
     flight, so offered = served + shed exactly. *)
  let epoch = max 1 config.epoch in
  let slots = max 1 (min config.domains shard_count) in
  let pool = Sim.Domain_pool.create ~slots in
  (* The RSA verify memo is domain-local (Domain.DLS); reset every slot's
     memo up front so the counters gathered after the run are attributable
     to this run alone, whatever ran on these domains before. *)
  Sim.Domain_pool.run pool (fun _slot -> Crypto.Rsa.Memo.clear (Crypto.Rsa.Memo.shared ()));
  let epochs = ref 0 in
  let finish () =
    try
      let t = ref Sim.Time.zero in
      let some_pending () =
        Array.exists (fun sh -> Sim.Engine.pending sh.engine > 0) shards
      in
      while !t < horizon || some_pending () do
        t := !t + epoch;
        incr epochs;
        Sim.Domain_pool.run pool (fun slot ->
            Array.iter
              (fun sh ->
                if sh.index mod slots = slot then
                  Sim.Engine.run_until sh.engine !t)
              shards);
        let msgs =
          Array.fold_left
            (fun acc sh ->
              let mine = sh.outbox in
              sh.outbox <- [];
              List.rev_append mine acc)
            [] shards
        in
        let msgs = List.sort Msg.compare msgs in
        List.iter
          (fun m ->
            let dst = shards.(m.Msg.dst) in
            ignore
              (Sim.Engine.schedule dst.engine ~at:!t (fun () -> deliver dst m)
                : Sim.Engine.handle))
          msgs
      done
    with e ->
      Sim.Domain_pool.shutdown pool;
      raise e
  in
  finish ();
  (* Gather each domain's memo counters before the workers join.  Distinct
     slots write distinct array cells, so the barrier in [run] is the only
     synchronisation needed. *)
  let verify_memo = Array.make slots (0, 0) in
  Sim.Domain_pool.run pool (fun slot ->
      let m = Crypto.Rsa.Memo.shared () in
      verify_memo.(slot) <- (Crypto.Rsa.Memo.hits m, Crypto.Rsa.Memo.misses m));
  Sim.Domain_pool.shutdown pool;
  (* Deterministic merge: fold per-shard state in shard order on the main
     domain.  Every reduction below is order-fixed, so the merged result is
     a pure function of the per-shard runs. *)
  let metrics = Metrics.create ~seed:config.seed () in
  Array.iter (fun sh -> Metrics.merge_into metrics sh.metrics) shards;
  let served_by = Array.make 3 0 in
  Array.iter
    (fun sh -> Array.iteri (fun i n -> served_by.(i) <- served_by.(i) + n) sh.served_by)
    shards;
  let invalidations =
    Array.fold_left
      (fun acc sh -> acc + (Core.Verdict_cache.stats sh.cache).Core.Verdict_cache.invalidations)
      0 shards
  in
  let migrations = Array.fold_left (fun acc sh -> acc + sh.migrations) 0 shards in
  (* Monitor merge: storm tallies add, detection times take the earliest,
     and the end-of-run entry census proves exactly-once rescheduling
     (every VM tracked on exactly one shard). *)
  let mon_affected = Array.make n_storms 0 in
  let mon_detect = Array.make n_storms None in
  Array.iter
    (fun sh ->
      Array.iteri (fun i n -> mon_affected.(i) <- mon_affected.(i) + n) sh.mon_affected;
      Array.iteri
        (fun i d ->
          match (d, mon_detect.(i)) with
          | Some t, Some t' -> if t < t' then mon_detect.(i) <- Some t
          | Some t, None -> mon_detect.(i) <- Some t
          | None, _ -> ())
        sh.mon_detect)
    shards;
  let mon_storms =
    match config.monitor with
    | None -> []
    | Some m ->
        List.mapi
          (fun i s ->
            let storm, at =
              match s with
              | Monitor.Rack_compromise { at; _ } -> ("rack-compromise", at)
              | Monitor.Image_cve { at; _ } -> ("image-cve", at)
              | Monitor.Migration_wave { at; _ } -> ("migration-wave", at)
            in
            { storm; at; affected = mon_affected.(i); detected_at = mon_detect.(i) })
          m.Monitor.storms
  in
  let mon_entries, mon_entry_dups =
    match config.monitor with
    | None -> (0, 0)
    | Some _ ->
        let seen = Hashtbl.create (max 16 total_vms) in
        let dups =
          ref (Array.fold_left (fun acc sh -> acc + sh.mon_double_adds) 0 shards)
        in
        Array.iter
          (fun sh ->
            match sh.mon with
            | None -> ()
            | Some mon ->
                List.iter
                  (fun vid ->
                    if Hashtbl.mem seen vid then incr dups
                    else Hashtbl.add seen vid ())
                  (Monitor.vids mon))
          shards;
        (Hashtbl.length seen, !dups)
  in
  let trace_digest =
    let buf = Buffer.create (40 * shard_count) in
    Array.iter (fun sh -> Buffer.add_string buf (Crypto.Sha256.finalize sh.trace)) shards;
    Crypto.Hexs.encode (Crypto.Sha256.digest (Buffer.contents buf))
  in
  let duration_s = Sim.Time.to_sec config.duration in
  let latency = Metrics.latency metrics in
  let nz v = if Float.is_nan v then 0.0 else v in
  let pct p = nz (Sim.Stats.Reservoir.percentile latency p) in
  let max_depth =
    Array.fold_left
      (fun acc sh -> max acc (Sim.Stats.Gauge.peak (Cluster.queue_gauge sh.cluster)))
      0 shards
  in
  let mean_depth =
    let total =
      Array.fold_left
        (fun acc sh ->
          let now_s = Sim.Time.to_sec (Sim.Engine.now sh.engine) in
          acc
          +. Sim.Stats.Gauge.time_weighted_mean (Cluster.queue_gauge sh.cluster)
               ~now:now_s)
        0.0 shards
    in
    total /. float_of_int shard_count
  in
  {
    config;
    offered = Metrics.offered metrics;
    served = Metrics.served metrics;
    shed_customer = Metrics.shed metrics Pqueue.Customer;
    shed_periodic = Metrics.shed metrics Pqueue.Periodic;
    shed_recheck = Metrics.shed metrics Pqueue.Recheck;
    coalesced = Metrics.coalesced metrics;
    measurements = Metrics.measurements metrics;
    unhealthy = Metrics.unhealthy metrics;
    cache_hits = Metrics.cache_hits metrics;
    cache_hit_rate = Metrics.cache_hit_rate metrics;
    invalidations;
    migrations;
    offered_rps = float_of_int (Metrics.offered metrics) /. duration_s;
    served_rps = float_of_int (Metrics.served metrics) /. duration_s;
    mean_ms = Sim.Stats.Reservoir.mean latency;
    p50_ms = pct 50.0;
    p95_ms = pct 95.0;
    p99_ms = pct 99.0;
    max_queue_depth = max_depth;
    mean_queue_depth = mean_depth;
    batches = Metrics.batches metrics;
    mean_batch_size = Metrics.mean_batch_size metrics;
    audit_appends = Metrics.audit_appends metrics;
    audit_checkpoints = Metrics.audit_checkpoints metrics;
    audit_proofs = Metrics.audit_proofs metrics;
    audit_equivocations = Metrics.audit_equivocations metrics;
    served_by_backend =
      List.filter_map
        (fun kind ->
          if Array.exists (fun k -> k = kind) config.backends then
            Some (Tpm.Backend.kind_to_string kind, served_by.(kind_slot kind))
          else None)
        Tpm.Backend.all_kinds;
    epochs = !epochs;
    verify_memo;
    mon_scheduled = Metrics.mon_scheduled_total metrics;
    mon_served = Metrics.mon_served_total metrics;
    mon_missed_periodic = Metrics.mon_missed metrics Pqueue.Periodic;
    mon_missed_recheck = Metrics.mon_missed metrics Pqueue.Recheck;
    mon_shed = Metrics.mon_shed_total metrics;
    mon_dedups = Metrics.mon_dedups metrics;
    mon_ticks = Metrics.mon_ticks metrics;
    mon_entries;
    mon_entry_dups;
    mon_fresh_min = nz (Sim.Stats.Fraction_series.min_fraction (Metrics.mon_fresh metrics));
    mon_fresh_mean = nz (Sim.Stats.Fraction_series.mean_fraction (Metrics.mon_fresh metrics));
    mon_fresh_final = nz (Sim.Stats.Fraction_series.final_fraction (Metrics.mon_fresh metrics));
    mon_storms;
    trace_digest;
  }

let fingerprint (r : result) =
  let b = Buffer.create 512 in
  let add fmt = Printf.ksprintf (fun s -> Buffer.add_string b s; Buffer.add_char b '\n') fmt in
  add "offered=%d" r.offered;
  add "served=%d" r.served;
  add "shed=%d,%d,%d" r.shed_customer r.shed_periodic r.shed_recheck;
  add "coalesced=%d" r.coalesced;
  add "measurements=%d" r.measurements;
  add "unhealthy=%d" r.unhealthy;
  add "cache_hits=%d" r.cache_hits;
  add "cache_hit_rate=%h" r.cache_hit_rate;
  add "invalidations=%d" r.invalidations;
  add "migrations=%d" r.migrations;
  add "offered_rps=%h" r.offered_rps;
  add "served_rps=%h" r.served_rps;
  add "mean_ms=%h" r.mean_ms;
  add "p50=%h" r.p50_ms;
  add "p95=%h" r.p95_ms;
  add "p99=%h" r.p99_ms;
  add "max_qd=%d" r.max_queue_depth;
  add "mean_qd=%h" r.mean_queue_depth;
  add "batches=%d" r.batches;
  add "mean_batch=%h" r.mean_batch_size;
  add "audit=%d,%d,%d,%d" r.audit_appends r.audit_checkpoints r.audit_proofs
    r.audit_equivocations;
  add "served_by=%s"
    (String.concat ","
       (List.map (fun (k, n) -> k ^ ":" ^ string_of_int n) r.served_by_backend));
  (* Monitor lines appear only in monitored runs, so an unmonitored run's
     fingerprint stays byte-identical to the pre-monitor driver's. *)
  (match r.config.monitor with
  | None -> ()
  | Some _ ->
      add "mon=%d,%d,%d,%d,%d,%d" r.mon_scheduled r.mon_served
        r.mon_missed_periodic r.mon_missed_recheck r.mon_shed r.mon_dedups;
      add "mon_ticks=%d" r.mon_ticks;
      add "mon_entries=%d,%d" r.mon_entries r.mon_entry_dups;
      add "mon_fresh=%h,%h,%h" r.mon_fresh_min r.mon_fresh_mean r.mon_fresh_final;
      List.iter
        (fun o ->
          add "mon_storm=%s,%d,%d,%s" o.storm o.at o.affected
            (match o.detected_at with None -> "-" | Some t -> string_of_int t))
        r.mon_storms);
  add "trace=%s" r.trace_digest;
  Crypto.Hexs.encode (Crypto.Sha256.digest (Buffer.contents b))
