type violation = { oracle : string; op_index : int; detail : string }

let pp_violation ppf v =
  Format.fprintf ppf "[%s] op %d: %s" v.oracle v.op_index v.detail

type attest_obs = {
  a_vid : string;
  a_property : Core.Property.t;
  a_nonce : string;
  a_result : (Core.Protocol.controller_report, string) result;
  a_host : string option;
}

type protocol_obs = {
  p_phrase : Copland.Phrase.t;
  p_accepted : bool;  (* type-checked and executed *)
  p_status : string;  (* "H"/"C"/"U", or "-" when rejected *)
  p_leaves : int;
  p_all_ok : bool;  (* every executed leaf delivered a report *)
  p_messages : int;  (* wire messages during this run *)
  p_drops : int;  (* wire drops during this run *)
  p_compute : Sim.Time.t;  (* non-network ledger total *)
  p_estimate : Copland.Estimate.t option;  (* Some iff accepted *)
  p_faulty : bool;  (* a network adversary was active *)
}

type monitor_probe = {
  mp_vid : string;
  mp_started : Sim.Time.t;  (* engine clock when this probe fired *)
  mp_attest : attest_obs;
}

type monitor_obs = {
  m_period : int;  (* re-attestation period (ms) in force after the op; 0 = off *)
  m_probes : monitor_probe list;  (* catch-up probes this op ran, in order *)
  m_storm : string list;  (* vids a Monitor_storm op planted malware in *)
}

type op_obs = {
  index : int;
  op : Op.op;
  started_at : Sim.Time.t;
  finished_at : Sim.Time.t;
  attests : attest_obs list;
  target : string option;  (* resolved vid of a lifecycle/infect op *)
  lifecycle_ok : bool;
  launched : (string * int * bool) option;
  ledger : (string * Sim.Time.t) list;
  net_messages : int;
  net_bytes : int;
  net_drops : int;
  audit_evidence : int;
  vtpm_stale : string list;
  vtpm_rebound : string list;
  protocol : protocol_obs option;  (* set only for Protocol_term ops *)
  monitor : monitor_obs option;  (* set only once the monitor has been touched *)
}

(* Model of the verdict cache: which (vid, property) entries MAY be validly
   cached, with the expiry the real cache computed at store time.  The model
   must stay a superset of the real cache's valid entries — every real store
   is mirrored, and entries are only dropped on events that provably
   invalidate them — so "real cache served, model says invalid" is always a
   genuine stale serve. *)
type entry = { stored_at : Sim.Time.t; expires : Sim.Time.t }

type t = {
  controller_key : Crypto.Rsa.public;
  cache : (string, entry) Hashtbl.t;  (* "vid|property" -> entry *)
  mutable ttl : Sim.Time.t;  (* mirrors Set_cache_ttl, initial 0 = off *)
  vm_image : (string, int) Hashtbl.t;  (* vid -> image pool index *)
  vm_monitored : (string, bool) Hashtbl.t;
  stale_hosts : (string, unit) Hashtbl.t;  (* restored-but-not-rebound vTPM hosts *)
  mutable terminated : string list;
  suspended : (string, unit) Hashtbl.t;
  mutable mon_period : int;  (* mirrors Monitor_enable/Monitor_period; ms, 0 = off *)
  mon_attempt : (string, Sim.Time.t) Hashtbl.t;  (* vid -> last probe attempt *)
  mutable fault_on : bool;  (* a network adversary is installed *)
  mutable pending_storm : (Sim.Time.t * string list) option;
      (* (detection deadline, planted vids) of an unacknowledged storm *)
  mutable last_time : Sim.Time.t;
  mutable last_messages : int;
  mutable last_bytes : int;
  mutable last_drops : int;
  mutable violations : violation list;  (* newest first *)
}

let create ~controller_key () =
  {
    controller_key;
    cache = Hashtbl.create 32;
    ttl = 0;
    vm_image = Hashtbl.create 16;
    vm_monitored = Hashtbl.create 16;
    stale_hosts = Hashtbl.create 4;
    terminated = [];
    suspended = Hashtbl.create 4;
    mon_period = 0;
    mon_attempt = Hashtbl.create 16;
    fault_on = false;
    pending_storm = None;
    last_time = 0;
    last_messages = 0;
    last_bytes = 0;
    last_drops = 0;
    violations = [];
  }

let key ~vid ~property = vid ^ "|" ^ Core.Property.to_string property

let model_store t ~vid ~property ~now =
  if t.ttl > 0 then
    Hashtbl.replace t.cache (key ~vid ~property) { stored_at = now; expires = now + t.ttl }

let model_invalidate t ~vid ~property = Hashtbl.remove t.cache (key ~vid ~property)

let model_invalidate_vm t ~vid =
  let doomed =
    Hashtbl.fold
      (fun k _ acc ->
        if String.length k > String.length vid
           && String.sub k 0 (String.length vid + 1) = vid ^ "|"
        then k :: acc
        else acc)
      t.cache []
  in
  List.iter (Hashtbl.remove t.cache) doomed

let model_invalidate_image t ~image =
  Hashtbl.iter
    (fun vid img -> if img = image then model_invalidate_vm t ~vid)
    t.vm_image

(* A VM the continuous monitor is responsible for: launched with
   monitoring requested, still alive, and not suspended (suspended VMs are
   rebaselined on resume). *)
let mon_tracked t vid =
  Hashtbl.find_opt t.vm_monitored vid = Some true
  && (not (Hashtbl.mem t.suspended vid))
  && not (List.mem vid t.terminated)

(* Slack on top of the period-derived freshness bound: probes are real
   attestations that themselves advance the clock, so a catch-up train over
   several VMs (or an op that runs long) legitimately delays the next
   probe by real simulated time. *)
let mon_grace = Sim.Time.sec 3

let flag t ~oracle ~op_index detail =
  let v = { oracle; op_index; detail } in
  t.violations <- v :: t.violations;
  [ v ]

let status_tag = function
  | Core.Report.Healthy -> "H"
  | Core.Report.Compromised _ -> "C"
  | Core.Report.Unknown _ -> "U"

(* --- Per-attest checks ---------------------------------------------------- *)

let check_attest t ~op_index ~started_at (a : attest_obs) =
  match a.a_result with
  | Error _ ->
      (* Hard errors deliver no verdict; nothing to check, nothing cached
         (the controller never stores on an error path). *)
      []
  | Ok creport ->
      let report = creport.Core.Protocol.report in
      let vs =
        (* Every delivered verdict carries a controller signature binding
           our vid, property and nonce. *)
        match
          Core.Protocol.verify_controller_report ~key:t.controller_key
            ~expected_vid:a.a_vid ~expected_property:a.a_property
            ~expected_nonce:a.a_nonce creport
        with
        | Ok () -> []
        | Error e ->
            flag t ~oracle:"verdict-signed" ~op_index
              (Format.asprintf "report for %s/%a rejected: %a" a.a_vid
                 Core.Property.pp a.a_property Core.Protocol.pp_verify_error e)
      in
      let vs =
        vs
        @
        if List.mem a.a_vid t.terminated && report.Core.Report.status = Core.Report.Healthy
        then
          flag t ~oracle:"terminated-vm" ~op_index
            (Printf.sprintf "terminated VM %s attested Healthy" a.a_vid)
        else []
      in
      let served_from_cache = report.Core.Report.produced_at < started_at in
      if served_from_cache then begin
        let vs =
          vs
          @
          if not (Core.Report.is_healthy report) then
            flag t ~oracle:"cache-consistency" ~op_index
              (Format.asprintf "non-healthy verdict (%s) served from cache for %s/%a"
                 (status_tag report.Core.Report.status)
                 a.a_vid Core.Property.pp a.a_property)
          else []
        in
        let k = key ~vid:a.a_vid ~property:a.a_property in
        match Hashtbl.find_opt t.cache k with
        | Some e when e.expires > started_at -> vs
        | Some e ->
            vs
            @ flag t ~oracle:"cache-consistency" ~op_index
                (Format.asprintf
                   "expired cache entry served for %s/%a (stored %a, expired %a, now %a)"
                   a.a_vid Core.Property.pp a.a_property Sim.Time.pp e.stored_at
                   Sim.Time.pp e.expires Sim.Time.pp started_at)
        | None ->
            vs
            @ flag t ~oracle:"cache-consistency" ~op_index
                (Format.asprintf
                   "stale verdict served from cache for %s/%a after an invalidating event"
                   a.a_vid Core.Property.pp a.a_property)
      end
      else begin
        (* Fresh measurement from a host holding restored-but-not-rebound
           vTPM state: the Privacy CA must refuse the stale binding, so a
           Healthy verdict here means a stale-state quote was certified. *)
        let vs =
          vs
          @
          match a.a_host with
          | Some host
            when Hashtbl.mem t.stale_hosts host
                 && report.Core.Report.status = Core.Report.Healthy ->
              flag t ~oracle:"vtpm-stale-binding" ~op_index
                (Format.asprintf
                   "fresh Healthy verdict for %s/%a measured on %s, whose restored vTPM \
                    state was never rebound"
                   a.a_vid Core.Property.pp a.a_property host)
          | _ -> []
        in
        (* Fresh observation: mirror the controller's cache bookkeeping. *)
        (match report.Core.Report.status with
        | Core.Report.Healthy ->
            model_store t ~vid:a.a_vid ~property:a.a_property ~now:started_at
        | Core.Report.Compromised _ | Core.Report.Unknown _ ->
            model_invalidate t ~vid:a.a_vid ~property:a.a_property);
        vs
      end

(* --- Protocol-term checks -------------------------------------------------
   protocol-verifier-agreement: the symbolic engine must agree with the
   phrase's syntactic strength — an unweakened phrase proves all properties,
   a weakened phrase yields at least one concrete attack.
   protocol-estimate: on a clean run (accepted, no adversary, no drops, no
   leaf errors) the measured wire messages and non-network compute sit
   inside the static {!Copland.Estimate} envelope. *)

let protocol_checks t ~op_index (p : protocol_obs) =
  let phrase = Copland.Phrase.to_string p.p_phrase in
  let report = Copland.Dy.verify p.p_phrase in
  let vs =
    if Copland.Phrase.weakened p.p_phrase then
      if report.Copland.Dy.attacks = [] then
        flag t ~oracle:"protocol-verifier-agreement" ~op_index
          (Printf.sprintf "weakened phrase %s produced no attack" phrase)
      else []
    else if not (Copland.Dy.holds report) then
      flag t ~oracle:"protocol-verifier-agreement" ~op_index
        (Printf.sprintf "unweakened phrase %s violates: %s" phrase
           (String.concat ", " (Copland.Dy.violated report)))
    else []
  in
  match p.p_estimate with
  | Some est when p.p_accepted && (not p.p_faulty) && p.p_drops = 0 && p.p_all_ok ->
      let vs =
        vs
        @
        if
          p.p_messages < est.Copland.Estimate.messages_min
          || p.p_messages > est.Copland.Estimate.messages_max
        then
          flag t ~oracle:"protocol-estimate" ~op_index
            (Printf.sprintf "%s sent %d messages, estimate [%d, %d]" phrase p.p_messages
               est.Copland.Estimate.messages_min est.Copland.Estimate.messages_max)
        else []
      in
      vs
      @
      if
        p.p_compute < est.Copland.Estimate.compute_min
        || p.p_compute > est.Copland.Estimate.compute_max
      then
        flag t ~oracle:"protocol-estimate" ~op_index
          (Printf.sprintf "%s cost %d compute, estimate [%d, %d]" phrase p.p_compute
             est.Copland.Estimate.compute_min est.Copland.Estimate.compute_max)
      else []
  | _ -> vs

let ledger_checks t ~op_index ~all_served (obs : op_obs) =
  let neg =
    List.filter_map
      (fun (label, cost) ->
        if cost < 0 then Some (Printf.sprintf "%s=%d" label cost) else None)
      obs.ledger
  in
  let vs =
    if neg <> [] then
      flag t ~oracle:"ledger-accounting" ~op_index
        ("negative ledger entries: " ^ String.concat ", " neg)
    else []
  in
  (* Only when EVERY request in the op was answered from the cache can we
     insist on a controller-local ledger; a mixed attest_many legitimately
     charges AS costs for its cold requests on the shared ledger. *)
  if
    all_served
    && List.exists
         (fun (l, _) -> String.length l >= 3 && String.sub l 0 3 = "as:")
         obs.ledger
  then
    vs
    @ flag t ~oracle:"ledger-accounting" ~op_index
        "cache-served attestation charged AS-side ledger costs"
  else vs

(* --- The per-op entry point ----------------------------------------------- *)

let observe t (obs : op_obs) =
  let vs = ref [] in
  let add v = vs := !vs @ v in
  (* Engine time is monotone, and Advance moves it by exactly its argument. *)
  if obs.started_at < t.last_time then
    add
      (flag t ~oracle:"time-monotone" ~op_index:obs.index
         (Format.asprintf "clock went backwards: %a after %a" Sim.Time.pp obs.started_at
            Sim.Time.pp t.last_time));
  if obs.finished_at < obs.started_at then
    add
      (flag t ~oracle:"time-monotone" ~op_index:obs.index
         (Format.asprintf "op finished (%a) before it started (%a)" Sim.Time.pp
            obs.finished_at Sim.Time.pp obs.started_at));
  (match obs.op with
  | Op.Advance ms ->
      (* With the monitor armed, catch-up probes run inside the advance and
         add their own simulated time, so the clock may move further than
         [ms] — never less. *)
      let moved = obs.finished_at - obs.started_at in
      let ok =
        if obs.monitor = None then moved = Sim.Time.ms ms else moved >= Sim.Time.ms ms
      in
      if not ok then
        add
          (flag t ~oracle:"time-monotone" ~op_index:obs.index
             (Format.asprintf "advance %d ms moved the clock by %a" ms Sim.Time.pp moved))
  | _ -> ());
  t.last_time <- obs.finished_at;
  (* Network counters only ever grow, and drops are a subset of messages. *)
  if
    obs.net_messages < t.last_messages || obs.net_bytes < t.last_bytes
    || obs.net_drops < t.last_drops
  then
    add
      (flag t ~oracle:"net-accounting" ~op_index:obs.index
         (Printf.sprintf "counters regressed: messages %d->%d bytes %d->%d drops %d->%d"
            t.last_messages obs.net_messages t.last_bytes obs.net_bytes t.last_drops
            obs.net_drops));
  if obs.net_drops > obs.net_messages then
    add
      (flag t ~oracle:"net-accounting" ~op_index:obs.index
         (Printf.sprintf "drops (%d) exceed observed messages (%d)" obs.net_drops
            obs.net_messages));
  t.last_messages <- obs.net_messages;
  t.last_bytes <- obs.net_bytes;
  t.last_drops <- obs.net_drops;
  (* Auditors watching an honest operator never accumulate evidence. *)
  if obs.audit_evidence > 0 then
    add
      (flag t ~oracle:"audit-honest" ~op_index:obs.index
         (Printf.sprintf "%d equivocation evidence record(s) against an honest log"
            obs.audit_evidence));
  (* Attestation results: signatures, cache model, terminated VMs. *)
  let all_served =
    obs.attests <> []
    && List.for_all
         (fun (a : attest_obs) ->
           match a.a_result with
           | Ok cr -> cr.Core.Protocol.report.Core.Report.produced_at < obs.started_at
           | Error _ -> false)
         obs.attests
  in
  List.iter
    (fun (a : attest_obs) ->
      add (check_attest t ~op_index:obs.index ~started_at:obs.started_at a))
    obs.attests;
  add (ledger_checks t ~op_index:obs.index ~all_served obs);
  (match obs.protocol with
  | Some p -> add (protocol_checks t ~op_index:obs.index p)
  | None -> ());
  (* Model updates for non-attest state transitions.  Lifecycle transitions
     invalidate only when the controller reported success (a failed suspend
     never touched the cache); terminate invalidates unconditionally, as the
     controller does. *)
  (match obs.op with
  | Op.Launch _ -> (
      match obs.launched with
      | Some (vid, image, monitored) ->
          Hashtbl.replace t.vm_image vid image;
          Hashtbl.replace t.vm_monitored vid monitored;
          if monitored then begin
            model_store t ~vid ~property:Core.Property.Startup_integrity
              ~now:obs.started_at;
            if t.mon_period > 0 then Hashtbl.replace t.mon_attempt vid obs.started_at
          end
      | None -> ())
  | Op.Terminate _ -> (
      match obs.target with
      | Some vid ->
          model_invalidate_vm t ~vid;
          if obs.lifecycle_ok then t.terminated <- vid :: t.terminated
      | None -> ())
  | Op.Suspend _ -> (
      match obs.target with
      | Some vid when obs.lifecycle_ok ->
          model_invalidate_vm t ~vid;
          Hashtbl.replace t.suspended vid ()
      | _ -> ())
  | Op.Resume _ -> (
      match obs.target with
      | Some vid when obs.lifecycle_ok ->
          model_invalidate_vm t ~vid;
          Hashtbl.remove t.suspended vid;
          (* the VM was unprobeable while suspended; its freshness clock
             restarts here, exactly as the replayer's does *)
          if t.mon_period > 0 && mon_tracked t vid then
            Hashtbl.replace t.mon_attempt vid obs.started_at
      | _ -> ())
  | Op.Migrate _ -> (
      match obs.target with
      | Some vid when obs.lifecycle_ok ->
          model_invalidate_vm t ~vid;
          (* A successful migrate of a monitored VM re-attests startup
             integrity on the destination and, when healthy, the verdict
             lands in the real cache after the invalidation.  Mirror the
             store (over-approximating: the model keeps the entry even if
             the re-attestation came back unhealthy, which is the sound
             direction for a one-sided oracle). *)
          if Hashtbl.find_opt t.vm_monitored vid = Some true then
            model_store t ~vid ~property:Core.Property.Startup_integrity
              ~now:obs.started_at
      | _ -> ())
  | Op.Set_cache_ttl ms -> t.ttl <- Sim.Time.ms (max 0 ms)
  | Op.Corrupt_image i ->
      model_invalidate_image t ~image:(i mod Array.length Op.images)
  | Op.Set_fault _ ->
      (* An adversary can starve probes of verdicts; both monitor oracles
         stand down until the network is honest again. *)
      t.fault_on <- true;
      t.pending_storm <- None
  | Op.Clear_fault -> t.fault_on <- false
  | Op.Monitor_enable ms ->
      let ms = max 0 ms in
      if ms > 0 then begin
        (* arming (re)baselines every tracked VM: freshness is measured
           from the moment the operator asked for it, not from launch *)
        if t.mon_period = 0 then
          Hashtbl.iter
            (fun vid monitored ->
              if monitored && mon_tracked t vid then
                Hashtbl.replace t.mon_attempt vid obs.started_at)
            t.vm_monitored;
        t.mon_period <- ms
      end
      else begin
        t.mon_period <- 0;
        t.pending_storm <- None
      end
  | Op.Monitor_period ms -> if t.mon_period > 0 && ms > 0 then t.mon_period <- ms
  | Op.Attest _ | Op.Attest_many _ | Op.Set_batching _ | Op.Enable_audit
  | Op.Advance _ | Op.Infect _ | Op.Vtpm_cycle _ | Op.Vtpm_clone _
  | Op.Vtpm_rebind _ | Op.Protocol_term _ | Op.Monitor_storm _ ->
      ());
  (* vTPM binding model: restored state marks the host stale, the explicit
     Privacy-CA re-registration clears it. *)
  List.iter (fun host -> Hashtbl.replace t.stale_hosts host ()) obs.vtpm_stale;
  List.iter (fun host -> Hashtbl.remove t.stale_hosts host) obs.vtpm_rebound;
  (* Continuous-monitoring oracles.  Both are one-sided and stand down
     while an adversary is installed (faults turn probes into errors and
     arbitrarily delay them via timeouts). *)
  (match obs.monitor with
  | None -> ()
  | Some m ->
      let bound = (2 * Sim.Time.ms t.mon_period) + mon_grace in
      (* monitor-freshness, part 1: at op entry no tracked VM has gone
         unprobed past the bound — catches a monitor that stopped waking
         up entirely. *)
      if t.mon_period > 0 && not t.fault_on then
        Hashtbl.iter
          (fun vid last ->
            if mon_tracked t vid && obs.started_at - last > bound then
              add
                (flag t ~oracle:"monitor-freshness" ~op_index:obs.index
                   (Format.asprintf "tracked VM %s unprobed for %a (bound %a)" vid
                      Sim.Time.pp (obs.started_at - last) Sim.Time.pp bound)))
          t.mon_attempt;
      (* monitor-freshness, part 2: each probe fires within the bound of
         the previous attempt.  Chunked catch-up inside Advance keeps this
         true; a monitor that only wakes at op boundaries (the planted
         Lazy_monitor mutant) is convicted by its first post-gap probe. *)
      List.iter
        (fun (p : monitor_probe) ->
          (if not t.fault_on then
             match Hashtbl.find_opt t.mon_attempt p.mp_vid with
             | Some last when p.mp_started - last > bound ->
                 add
                   (flag t ~oracle:"monitor-freshness" ~op_index:obs.index
                      (Format.asprintf
                         "probe of %s fired %a after the previous attempt (bound %a)"
                         p.mp_vid Sim.Time.pp (p.mp_started - last) Sim.Time.pp bound))
             | _ -> ());
          Hashtbl.replace t.mon_attempt p.mp_vid p.mp_started;
          (* probes are real attestations: same signature/termination
             checks, and their verdicts feed the cache model *)
          add (check_attest t ~op_index:obs.index ~started_at:p.mp_started p.mp_attest))
        m.m_probes;
      (* monitor-storm-detect: a planted compromise of tracked VMs must
         surface as a Compromised verdict within one period of any cached
         Healthy verdicts aging out (the TTL term: a probe legitimately
         dedups against a verdict cached just before the storm). *)
      (if m.m_storm <> [] && t.mon_period > 0 && not t.fault_on then
         match List.filter (mon_tracked t) m.m_storm with
         | [] -> ()
         | vids ->
             let deadline =
               obs.finished_at + Sim.Time.ms t.mon_period + t.ttl + mon_grace
             in
             t.pending_storm <- Some (deadline, vids));
      (match t.pending_storm with
      | None -> ()
      | Some (deadline, vids) ->
          let compromised (a : attest_obs) =
            List.mem a.a_vid vids
            &&
            match a.a_result with
            | Ok cr -> (
                match cr.Core.Protocol.report.Core.Report.status with
                | Core.Report.Compromised _ -> true
                | _ -> false)
            | Error _ -> false
          in
          let detected =
            List.exists compromised obs.attests
            || List.exists (fun (p : monitor_probe) -> compromised p.mp_attest) m.m_probes
          in
          if detected then t.pending_storm <- None
          else
            (* planted VMs that since terminated or suspended are no longer
               the monitor's to catch *)
            let vids = List.filter (mon_tracked t) vids in
            if vids = [] then t.pending_storm <- None
            else if obs.finished_at > deadline then begin
              t.pending_storm <- None;
              add
                (flag t ~oracle:"monitor-storm-detect" ~op_index:obs.index
                   (Format.asprintf
                      "storm over [%s] still undetected %a past its deadline"
                      (String.concat "," vids) Sim.Time.pp (obs.finished_at - deadline)))
            end
            else t.pending_storm <- Some (deadline, vids)));
  !vs

let all t = List.rev t.violations

(* Stable one-line summary of an op's observable effects, for the
   determinism digest (same seed => same trace). *)
let digest_of_obs (obs : op_obs) =
  let result_tag (a : attest_obs) =
    match a.a_result with
    | Error _ -> "E"
    | Ok cr ->
        status_tag cr.Core.Protocol.report.Core.Report.status
        ^ string_of_int cr.Core.Protocol.report.Core.Report.produced_at
  in
  Printf.sprintf "%d|%s|%d|%d|%s|%s|%b|%s|%d|%d|%d|%d" obs.index
    (Op.op_to_string obs.op) obs.started_at obs.finished_at
    (String.concat "," (List.map result_tag obs.attests))
    (Option.value ~default:"-" obs.target)
    obs.lifecycle_ok
    (match obs.launched with Some (vid, _, _) -> vid | None -> "-")
    obs.net_messages obs.net_bytes obs.net_drops obs.audit_evidence
  (* appended only for protocol ops, so historical digests are unchanged *)
  ^ (match obs.protocol with
    | None -> ""
    | Some p ->
        Printf.sprintf "|P%s:%b:%s:%d:%d:%d:%d"
          (Copland.Phrase.to_string p.p_phrase)
          p.p_accepted p.p_status p.p_leaves p.p_messages p.p_drops p.p_compute)
  (* likewise appended only once the monitor has been touched *)
  ^
  match obs.monitor with
  | None -> ""
  | Some m ->
      Printf.sprintf "|M%d:%s:%s" m.m_period
        (String.concat ","
           (List.map
              (fun p ->
                Printf.sprintf "%s@%d%s" p.mp_vid p.mp_started (result_tag p.mp_attest))
              m.m_probes))
        (String.concat "," m.m_storm)
