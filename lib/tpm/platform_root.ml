(* Hardware vendor root of trust for CVM-style attestation (the SoK-on-CVM
   threat model): the platform — not the cloud operator — signs reports.
   The vendor root endorses each machine's fused platform key once, at
   "manufacture" time; per-session report keys are endorsed by the platform
   key.  A verifier holding only the vendor root public key can check the
   whole chain, keeping the operator (and its Privacy CA) outside the TCB. *)

type t = { key : Crypto.Rsa.keypair; name : string }

let create ?(bits = 1024) ~seed () =
  let drbg = Crypto.Drbg.create ~seed:("platform-root|" ^ seed) in
  { key = Crypto.Rsa.generate drbg ~bits; name = "platform-root" }

let name t = t.name
let public t = t.key.Crypto.Rsa.public

let platform_key_payload pub = "cvm-platform-key|" ^ Crypto.Rsa.public_to_string pub
let report_key_payload pub = "cvm-report-key|" ^ Crypto.Rsa.public_to_string pub

let endorse_platform t pub = Crypto.Rsa.sign t.key.Crypto.Rsa.secret (platform_key_payload pub)

(* --- The endorsement chain carried on the wire ---------------------------- *)

(* One string, riding in the measure-response [endorsement] field:
   (platform public key, vendor-root cert over it, platform signature over
   the session report key). *)
let chain_magic = "cm-cvm-chain/1"

let encode_chain ~platform ~cert ~report_sig =
  Wire.Codec.encode (fun e ->
      Wire.Codec.Enc.str e chain_magic;
      Wire.Codec.Enc.str e (Crypto.Rsa.public_to_string platform);
      Wire.Codec.Enc.str e cert;
      Wire.Codec.Enc.str e report_sig)

let decode_chain s =
  match
    Wire.Codec.decode_opt s (fun d ->
        let magic = Wire.Codec.Dec.str d in
        if not (String.equal magic chain_magic) then
          raise (Wire.Codec.Error "not a cvm endorsement chain");
        let platform_s = Wire.Codec.Dec.str d in
        let cert = Wire.Codec.Dec.str d in
        let report_sig = Wire.Codec.Dec.str d in
        (platform_s, cert, report_sig))
  with
  | None -> None
  | Some (platform_s, cert, report_sig) -> (
      match Crypto.Rsa.public_of_string platform_s with
      | None -> None
      | Some platform -> Some (platform, cert, report_sig))

let verify_chain ~root ~endorsement ~key =
  match decode_chain endorsement with
  | None -> false
  | Some (platform, cert, report_sig) ->
      Crypto.Rsa.verify_memo root ~signature:cert (platform_key_payload platform)
      && Crypto.Rsa.verify_memo platform ~signature:report_sig (report_key_payload key)
