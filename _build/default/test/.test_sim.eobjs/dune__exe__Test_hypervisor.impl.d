test/test_hypervisor.ml: Alcotest Array Cache Credit_scheduler Flavor Guest_os Hypervisor Image List Option Printf Program QCheck QCheck_alcotest Result Server Sim String Tpm Vm
