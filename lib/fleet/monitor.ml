type storm =
  | Rack_compromise of { at : Sim.Time.t; cluster : int }
  | Image_cve of { at : Sim.Time.t; property : Core.Property.t }
  | Migration_wave of { at : Sim.Time.t; count : int }

type config = {
  tick : Sim.Time.t;
  budget : Sim.Time.t;
  recheck_budget : Sim.Time.t;
  lead : Sim.Time.t;
  property : Core.Property.t;
  storms : storm list;
}

let default_config =
  {
    tick = Sim.Time.ms 500;
    budget = Sim.Time.sec 5;
    recheck_budget = Sim.Time.sec 1;
    lead = Sim.Time.ms 1500;
    property = Core.Property.Runtime_integrity;
    storms = [];
  }

type entry = {
  vid : string;
  idx : int;
  stamp : int;  (* identity across remove/re-add, checked by complete *)
  mutable cls : Pqueue.priority;
  mutable prop : Core.Property.t;
  mutable deadline : Sim.Time.t;
  mutable fresh_until : Sim.Time.t;
  mutable inflight : bool;
  mutable forced : (Pqueue.priority * Core.Property.t) option;
}

type t = {
  config : config;
  entries : (string, entry) Hashtbl.t;
  mutable next_stamp : int;
  mutable storms_pending : (int * storm) list;
}

let create config =
  {
    config;
    entries = Hashtbl.create 64;
    next_stamp = 0;
    storms_pending = List.mapi (fun i s -> (i, s)) config.storms;
  }

let config t = t.config
let size t = Hashtbl.length t.entries
let vids t = Hashtbl.fold (fun vid _ acc -> vid :: acc) t.entries []

let add t ~vid ~idx ~cls ~deadline =
  let fresh_insert = not (Hashtbl.mem t.entries vid) in
  let stamp = t.next_stamp in
  t.next_stamp <- stamp + 1;
  Hashtbl.replace t.entries vid
    {
      vid;
      idx;
      stamp;
      cls;
      prop = t.config.property;
      deadline;
      fresh_until = 0;
      inflight = false;
      forced = None;
    };
  fresh_insert

let remove t ~vid =
  let present = Hashtbl.mem t.entries vid in
  Hashtbl.remove t.entries vid;
  present

type probe = {
  vid : string;
  cls : Pqueue.priority;
  prop : Core.Property.t;
  deadline : Sim.Time.t;
  token : int;
}

type tick_result = {
  probes : probe list;
  dedups : string list;
  fresh : int;
  total : int;
}

(* Scan order is fleet-index order — a pure function of the tracked set,
   independent of hash-table internals and so of the execution history
   that built the table.  This is the scheduler's determinism anchor. *)
let scan t =
  let es = Hashtbl.fold (fun _ e acc -> e :: acc) t.entries [] in
  List.sort (fun a b -> compare a.idx b.idx) es

let tick t ~now ~fresh_until =
  let probes = ref [] and dedups = ref [] and fresh = ref 0 and total = ref 0 in
  List.iter
    (fun e ->
      incr total;
      if (not e.inflight) && e.deadline <= now + t.config.lead then begin
        match fresh_until ~vid:e.vid ~prop:e.prop with
        | Some until when until > now ->
            (* A cached verdict still covers the budget: no probe, just
               push the deadline to when that verdict goes stale. *)
            e.deadline <- until;
            if until > e.fresh_until then e.fresh_until <- until;
            dedups := e.vid :: !dedups
        | Some _ | None ->
            e.inflight <- true;
            probes :=
              {
                vid = e.vid;
                cls = e.cls;
                prop = e.prop;
                deadline = e.deadline;
                token = e.stamp;
              }
              :: !probes
      end;
      if e.fresh_until > now then incr fresh)
    (scan t);
  { probes = List.rev !probes; dedups = List.rev !dedups; fresh = !fresh; total = !total }

let complete t (p : probe) ~now ~served =
  match Hashtbl.find_opt t.entries p.vid with
  | Some e when e.stamp = p.token ->
      e.inflight <- false;
      if served && now + t.config.budget > e.fresh_until then
        e.fresh_until <- now + t.config.budget;
      (match e.forced with
      | Some (cls, prop) ->
          e.cls <- cls;
          e.prop <- prop;
          e.deadline <- now + t.config.recheck_budget;
          e.forced <- None
      | None ->
          if served then begin
            e.cls <- Pqueue.Periodic;
            e.prop <- t.config.property;
            e.deadline <- now + t.config.budget
          end
          (* shed: deadline stays armed, the next tick retries *))
  | Some _ | None -> ()

let force_all t ~now ~cls ~prop =
  List.map
    (fun e ->
      (* The verdict being re-proven is suspect from now on. *)
      if e.fresh_until > now then e.fresh_until <- now;
      if e.inflight then e.forced <- Some (cls, prop)
      else begin
        e.cls <- cls;
        e.prop <- prop;
        e.deadline <- now + t.config.recheck_budget
      end;
      e.vid)
    (scan t)

let due_storms t ~now =
  let due, later =
    List.partition
      (fun (_, s) ->
        match s with
        | Rack_compromise { at; _ } | Image_cve { at; _ } | Migration_wave { at; _ }
          ->
            at <= now)
      t.storms_pending
  in
  t.storms_pending <- later;
  due

let fresh_until_of_report config (r : Core.Report.t) =
  r.Core.Report.produced_at + config.budget
