(** Fleet-scale attestation throughput experiment.

    Sweeps offered arrival rate x AS shard count x verdict-cache TTL over a
    deterministic fleet (see {!Fleet.Driver}) and reports offered vs served
    throughput, latency percentiles, cache hit rate and shed counts — the
    baseline every scaling PR is measured against.

    On top of the sweep, runs the {e sharded scenario} — the epoch-barrier
    driver's headline configuration (10^5 VMs offered >10^3 req/s at the
    default scale) — once per domain count, gating that every run is
    byte-identical ({!Fleet.Driver.fingerprint}) and recording the host
    wall-clock curve that parallel execution buys. *)

type row = {
  rate : float;
  as_count : int;
  ttl : Sim.Time.t;
  domains : int;  (** OCaml domains the run executed on *)
  host_wall_s : float;  (** real elapsed time of this [Fleet.Driver.run] *)
  r : Fleet.Driver.result;
}

type sharded = {
  curve : row list;  (** the same scenario at each domain count *)
  identical : bool;  (** all fingerprints equal — the determinism gate *)
}

type result = { seed : int; scale : string; rows : row list; sharded : sharded }
(** [rows] includes the sharded curve rows (after the sweep and the
    heterogeneous-backend row), so artifact consumers see one uniform
    schema; [sharded] summarises the curve and its identity verdict. *)

val sharded_scenario :
  seed:int -> [ `Default | `Smoke ] -> Fleet.Driver.config * int list
(** The sharded scaling scenario at the given scale: its driver config and
    the domain counts it is swept over.  Exposed so the monitor experiment
    and the regression tests pin the very same scenario the committed
    BENCH_fleet.json fingerprints. *)

val run : ?seed:int -> ?scale:[ `Default | `Smoke ] -> unit -> result
(** [scale] defaults to [`Smoke] when the environment variable
    [CLOUDMONATT_FLEET_SCALE] is ["smoke"] (the CI setting), else
    [`Default]. *)

val identical_across_domains : result -> bool
(** The determinism gate the bench harness turns into an exit status. *)

val print : result -> unit

val to_json : ?host:bool -> result -> Json.t
(** [host] (default true) includes the per-row [host_wall_s] and the
    sharded wall-clock curve — the only nondeterministic bytes in the
    document.  Pass [~host:false] to compare two runs for byte-identity. *)

val audit_fields : Fleet.Driver.result -> (string * Json.t) list
(** [[]] unless the run had auditing on, in which case one ["audit"]
    object (checkpoint interval and the four transparency counters) —
    shared by every row emitter so audit-off artifacts stay
    byte-identical to their pre-audit form. *)
