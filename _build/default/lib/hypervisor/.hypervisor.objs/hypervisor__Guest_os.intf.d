lib/hypervisor/guest_os.mli:
