lib/experiments/fig5.ml: Array Attacks Cloud Commands Common Controller Core Format Hypervisor Option Printf Property Report Sim
