(** VM flavors (resource shapes), mirroring OpenStack's m1 family used in
    the paper's evaluation. *)

type t = { name : string; vcpus : int; mem_mb : int; disk_gb : int }

val small : t (** 1 vCPU, 2 GB *)

val medium : t (** 2 vCPU, 4 GB *)

val large : t (** 4 vCPU, 8 GB *)

val all : t list

val of_name : string -> t option

val pp : Format.formatter -> t -> unit
