lib/experiments/fig10.ml: Cloud Commands Common Controller Core Format Hypervisor List Option Printf Property Sim Workloads
