type t = {
  index : int;
  sth : Sth.t;
  proof : Crypto.Merkle.proof;
}

let verify ~key ~entry t =
  Sth.verify ~key t.sth
  && Crypto.Merkle.verify_at ~root:t.sth.Sth.root ~leaf:entry ~index:t.index
       ~size:t.sth.Sth.size t.proof

let encode e t =
  Wire.Codec.Enc.int e t.index;
  Sth.encode e t.sth;
  Crypto.Merkle.encode e t.proof

let decode d =
  let index = Wire.Codec.Dec.int d in
  let sth = Sth.decode d in
  let proof = Crypto.Merkle.decode d in
  { index; sth; proof }
