lib/core/lifecycle.ml: Costs Hypervisor Net
