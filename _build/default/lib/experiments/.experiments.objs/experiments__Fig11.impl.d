lib/experiments/fig11.ml: Cloud Commands Common Controller Core Format Ledger List Printf Property Protocol Sim String
