(** Property Interpretation Module (paper sections 4.1-4.5).

    Bridges the semantic gap in both directions: maps a requested security
    property P to the measurement list rM a cloud server can actually
    collect, and judges the returned measurements M against reference
    values or statistical criteria to decide whether P holds. *)

(** Sources the covert-channel property can be monitored from (paper
    4.4.3: the system can monitor several channel media, or switch
    randomly between them). *)
type covert_source = Cpu_bursts | Cache_misses

(** Detectors the runtime-integrity property can combine: the task-list
    diff of paper section 4.3, and an IMA-style binary whitelist check
    (the appraiser model of the paper's citation [33]). *)
type integrity_source = Task_diff | Ima_whitelist

(** Appraiser references and decision thresholds. *)
type refs = {
  golden_platform : string;  (** expected boot-chain PCR composite *)
  golden_image : string -> string option;  (** image name -> expected hash *)
  availability_min_pct : float;
      (** relative CPU usage (vtime/window, percent) below which the VM
          {e may} be availability-compromised; default 25% *)
  steal_min_fraction : float;
      (** fraction of wanted CPU time (run + steal) that was stolen, above
          which low usage counts as starvation rather than idleness;
          default 0.70.  Both conditions must hold for a Compromised
          verdict, so idle VMs are not flagged. *)
  min_histogram_samples : int;
      (** bursts needed before the covert-channel verdict is meaningful *)
  bimodal_min_separation : float;  (** cluster separation threshold *)
  bimodal_min_weight : float;  (** minimum mass in each cluster *)
  covert_sources : covert_source list;
      (** which media the covert-channel property checks; default
          [[Cpu_bursts]], the paper's concrete case study *)
  min_cache_windows : int;  (** windows needed for a cache verdict *)
  integrity_sources : integrity_source list;
      (** runtime-integrity detectors; default [[Task_diff]] *)
  known_binary : string -> string -> bool;
      (** [known_binary name hash]: appraiser whitelist; the default accepts
          exactly the pristine binary for each name *)
}

val default_refs : refs
(** Golden values from the pristine platform and image definitions. *)

val requests_for : refs -> Property.t -> Monitors.Measurement.request list
(** The P -> rM mapping (for [Covert_channel_free], one request per
    configured source). *)

val interpret :
  refs -> image_name:string option -> Property.t -> Monitors.Measurement.value list ->
  Report.status * string
(** [interpret refs ~image_name p values] returns the verdict and a short
    evidence string.  Measurements that do not match the property's
    expected shape yield [Unknown]. *)

val histogram_verdict : refs -> int array -> Report.status * string
(** The covert-channel decision on a burst-interval histogram, exposed for
    tests and the detection-threshold ablation bench. *)

val cache_verdict : refs -> int array -> Report.status * string
(** The covert-channel decision on a per-window cache-miss series: a
    bimodal split of window miss counts (quiet vs loud windows with wide
    separation) is the prime-probe signalling signature. *)

val ima_verdict : refs -> (string * string) list -> Report.status * string
(** Whitelist check over the IMA log: any unknown or mismatching binary
    hash is flagged. *)
