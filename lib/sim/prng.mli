(** Deterministic pseudo-random number generator.

    An xoshiro256** generator seeded through splitmix64.  Every source of
    randomness in the simulation derives from one of these, so a run is
    reproducible from its seed.  Not cryptographic: the crypto library has
    its own DRBG (which is seeded from one of these when simulating). *)

type t

val create : int -> t
(** [create seed] builds a generator from a 63-bit seed. *)

val split : t -> t
(** [split t] derives an independent generator, advancing [t]. *)

val bits64 : t -> int64
(** Next 64 uniformly random bits. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive. *)

val float : t -> float -> float
(** [float t x] is uniform in [\[0, x)]. *)

val bool : t -> bool

val gaussian : t -> mu:float -> sigma:float -> float
(** Box-Muller normal sample. *)

val bytes : t -> int -> bytes
(** [bytes t n] is [n] random bytes. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val pick : t -> 'a array -> 'a
(** Uniform choice from a non-empty array. *)

val weighted : t -> (int * 'a) list -> 'a
(** [weighted t choices] picks a value with probability proportional to its
    integer weight.  Non-positive weights never fire; at least one weight
    must be positive. *)
