type kind = Split_view | Inconsistent | Rollback | Bad_signature | Bad_entry

let pp_kind ppf k =
  Format.pp_print_string ppf
    (match k with
    | Split_view -> "split-view"
    | Inconsistent -> "inconsistent"
    | Rollback -> "rollback"
    | Bad_signature -> "bad-signature"
    | Bad_entry -> "bad-entry")

type evidence = {
  log_id : string;
  kind : kind;
  trusted : Sth.t option;
  offending : Sth.t option;
  detail : string;
  at : Sim.Time.t;
}

let pp_evidence ppf e =
  Format.fprintf ppf "[%a] %s: %a (%s)" Sim.Time.pp e.at e.log_id pp_kind e.kind e.detail

type log_state = {
  mutable trusted : Sth.t option;
  mutable pending : Sth.t list; (* gossiped heads awaiting a consistency check *)
}

type t = {
  name : string;
  key_of : string -> Crypto.Rsa.public option;
  clock : unit -> Sim.Time.t;
  state : (string, log_state) Hashtbl.t;
  mutable evidence : evidence list; (* newest first *)
  mutable sths_checked : int;
  mutable proofs_checked : int;
  mutable entries_checked : int;
}

let create ~name ~key_of ?(clock = fun () -> Sim.Time.zero) () =
  {
    name;
    key_of;
    clock;
    state = Hashtbl.create 8;
    evidence = [];
    sths_checked = 0;
    proofs_checked = 0;
    entries_checked = 0;
  }

let name t = t.name
let evidence t = List.rev t.evidence
let evidence_count t = List.length t.evidence
let sths_checked t = t.sths_checked
let proofs_checked t = t.proofs_checked
let entries_checked t = t.entries_checked
let trusted t ~log_id = Option.bind (Hashtbl.find_opt t.state log_id) (fun s -> s.trusted)

let trusted_heads t =
  Hashtbl.fold
    (fun _ st acc -> match st.trusted with Some sth -> sth :: acc | None -> acc)
    t.state []
  |> List.sort (fun a b -> compare a.Sth.log_id b.Sth.log_id)

let state_of t log_id =
  match Hashtbl.find_opt t.state log_id with
  | Some s -> s
  | None ->
      let s = { trusted = None; pending = [] } in
      Hashtbl.add t.state log_id s;
      s

let convict t ?trusted ?offending ~log_id ~kind detail =
  t.evidence <-
    { log_id; kind; trusted; offending; detail; at = t.clock () } :: t.evidence

let good_signature t sth =
  t.sths_checked <- t.sths_checked + 1;
  match t.key_of sth.Sth.log_id with
  | None ->
      convict t ~offending:sth ~log_id:sth.Sth.log_id ~kind:Bad_signature
        "STH for unknown log";
      false
  | Some key ->
      if Sth.verify ~key sth then true
      else begin
        convict t ~offending:sth ~log_id:sth.Sth.log_id ~kind:Bad_signature
          "STH signature does not verify";
        false
      end

(* Checks possible without any log access: two signed heads of the same
   size with different roots condemn the operator on the spot. *)
let same_size_conflict t st sth =
  match st.trusted with
  | Some tr when tr.Sth.size = sth.Sth.size && not (String.equal tr.Sth.root sth.Sth.root)
    ->
      convict t ~trusted:tr ~offending:sth ~log_id:sth.Sth.log_id ~kind:Split_view
        (Printf.sprintf "two signed heads of size %d with different roots" sth.Sth.size);
      true
  | _ -> false

let note t sth =
  if good_signature t sth then begin
    let st = state_of t sth.Sth.log_id in
    if not (same_size_conflict t st sth) then begin
      match st.trusted with
      | Some tr when Sth.equal tr sth -> ()
      | None ->
          (* First contact: trust-on-first-use, like a CT client. *)
          st.trusted <- Some sth
      | Some _ ->
          if
            not
              (List.exists (fun p -> Sth.equal p sth) st.pending)
          then st.pending <- sth :: st.pending
    end
  end

(* Prove [old] is a prefix of [new_] using the view's consistency oracle.
   An operator that cannot serve the requested proof at all — e.g. a forked
   log asked to extend to a size it never reached — fails the check just
   like one serving a bad proof. *)
let check_extends t (view : View.t) ~old ~new_ =
  t.proofs_checked <- t.proofs_checked + 1;
  match view.View.consistency ~old_size:old.Sth.size ~size:new_.Sth.size with
  | proof ->
      Crypto.Merkle.verify_consistency ~old_size:old.Sth.size ~old_root:old.Sth.root
        ~size:new_.Sth.size ~root:new_.Sth.root proof
  | exception _ -> false

let drain_pending t st (view : View.t) =
  let pending = st.pending in
  st.pending <- [];
  List.iter
    (fun p ->
      match st.trusted with
      | None -> st.trusted <- Some p
      | Some tr ->
          if not (Sth.equal tr p) && not (same_size_conflict t st p) then begin
            if p.Sth.size < tr.Sth.size then begin
              (* A peer's older head must appear in our history. *)
              if not (check_extends t view ~old:p ~new_:tr) then
                convict t ~trusted:tr ~offending:p ~log_id:view.View.log_id
                  ~kind:Inconsistent
                  "gossiped head is not a prefix of the view we were served"
            end
            else if check_extends t view ~old:tr ~new_:p then st.trusted <- Some p
            else
              convict t ~trusted:tr ~offending:p ~log_id:view.View.log_id
                ~kind:Inconsistent
                "gossiped head does not extend the view we were served"
          end)
    pending

let observe t (view : View.t) =
  let sth = view.View.latest_sth () in
  if good_signature t sth then begin
    let st = state_of t view.View.log_id in
    (match st.trusted with
    | None -> st.trusted <- Some sth
    | Some tr ->
        if not (Sth.equal tr sth) && not (same_size_conflict t st sth) then begin
          if sth.Sth.size < tr.Sth.size then
            (* The log itself served us a head older than one it already
               served us: it is hiding entries it committed to. *)
            convict t ~trusted:tr ~offending:sth ~log_id:view.View.log_id ~kind:Rollback
              (Printf.sprintf "served head regressed from size %d to %d" tr.Sth.size
                 sth.Sth.size)
          else if check_extends t view ~old:tr ~new_:sth then st.trusted <- Some sth
          else
            convict t ~trusted:tr ~offending:sth ~log_id:view.View.log_id
              ~kind:Inconsistent "served head does not extend the previous one"
        end);
    drain_pending t st view
  end

let replay t (view : View.t) ~upto ~check =
  let bad = ref 0 in
  for i = 0 to upto - 1 do
    t.entries_checked <- t.entries_checked + 1;
    match view.View.entry i with
    | None ->
        incr bad;
        convict t ~log_id:view.View.log_id ~kind:Bad_entry
          (Printf.sprintf "entry %d missing below the committed size" i)
    | Some entry ->
        if not (check ~index:i entry) then begin
          incr bad;
          convict t ~log_id:view.View.log_id ~kind:Bad_entry
            (Printf.sprintf "entry %d failed the content check" i)
        end
  done;
  !bad

(* Gossip: hand every trusted head to a peer auditor. *)
let broadcast t ~to_ =
  Hashtbl.iter
    (fun _ st -> match st.trusted with Some sth -> note to_ sth | None -> ())
    t.state

let exchange a b =
  broadcast a ~to_:b;
  broadcast b ~to_:a
