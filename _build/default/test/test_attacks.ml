(* Tests for the attack implementations. *)

let qtest = QCheck_alcotest.to_alcotest

(* --- Covert channel -------------------------------------------------------- *)

let run_channel bits =
  let engine = Sim.Engine.create () in
  let sched = Hypervisor.Credit_scheduler.create ~engine ~pcpus:1 () in
  let sender = Hypervisor.Credit_scheduler.add_domain sched ~name:"s" ~weight:256 in
  let receiver = Hypervisor.Credit_scheduler.add_domain sched ~name:"r" ~weight:256 in
  let sp = Attacks.Covert_channel.sender_program ~bits () in
  let rp, stamps = Attacks.Covert_channel.receiver_program () in
  ignore (Hypervisor.Credit_scheduler.add_vcpu sched sender ~pin:0 sp);
  ignore (Hypervisor.Credit_scheduler.add_vcpu sched receiver ~pin:0 rp);
  Sim.Engine.run_until engine
    (Attacks.Covert_channel.transmission_time ~bits:(List.length bits) () + Sim.Time.sec 2);
  (Attacks.Covert_channel.decode (stamps ()), sender)

let covert_roundtrip =
  QCheck.Test.make ~name:"bits transmit losslessly" ~count:10
    QCheck.(list_of_size (Gen.int_range 1 40) bool)
    (fun bits ->
      let received, _ = run_channel bits in
      received = bits)

let test_covert_histogram_bimodal () =
  let prng = Sim.Prng.create 3 in
  let bits = Attacks.Covert_channel.random_bits prng 80 in
  let _, sender = run_channel bits in
  let counts = Hypervisor.Credit_scheduler.burst_counts sender in
  (* Mass concentrated in exactly the two signalling bins. *)
  Alcotest.(check bool) "5ms peak" true (counts.(4) > 10);
  Alcotest.(check bool) "20ms peak" true (counts.(19) > 10);
  let total = Array.fold_left ( + ) 0 counts in
  Alcotest.(check bool) "little else" true (counts.(4) + counts.(19) > total * 9 / 10)

let test_covert_ber_helpers () =
  Alcotest.(check (float 1e-9)) "identical" 0.0
    (Attacks.Covert_channel.bit_error_rate ~sent:[ true; false ] ~received:[ true; false ]);
  Alcotest.(check (float 1e-9)) "one flip of two" 0.5
    (Attacks.Covert_channel.bit_error_rate ~sent:[ true; false ] ~received:[ true; true ]);
  Alcotest.(check (float 1e-9)) "missing counts as error" 0.5
    (Attacks.Covert_channel.bit_error_rate ~sent:[ true; false ] ~received:[ true ]);
  Alcotest.(check (float 1e-9)) "empty sent" 0.0
    (Attacks.Covert_channel.bit_error_rate ~sent:[] ~received:[])

let test_covert_decode_clean_trace () =
  (* A receiver that was never preempted decodes nothing. *)
  let stamps = List.init 100 (fun i -> i * 500) in
  Alcotest.(check (list bool)) "no bits from smooth progress" []
    (Attacks.Covert_channel.decode stamps)

let test_random_bits_deterministic () =
  let a = Attacks.Covert_channel.random_bits (Sim.Prng.create 5) 32 in
  let b = Attacks.Covert_channel.random_bits (Sim.Prng.create 5) 32 in
  Alcotest.(check (list bool)) "deterministic" a b

(* --- Availability attack ----------------------------------------------------- *)

let victim_completion attacker =
  let engine = Sim.Engine.create () in
  let sched = Hypervisor.Credit_scheduler.create ~engine ~pcpus:2 () in
  let victim = Hypervisor.Credit_scheduler.add_domain sched ~name:"v" ~weight:256 in
  let finish = ref 0 in
  ignore
    (Hypervisor.Credit_scheduler.add_vcpu sched victim ~pin:0
       (Hypervisor.Program.compute_total ~total:(Sim.Time.sec 1)
          ~on_done:(fun t -> finish := t)
          ()));
  if attacker then begin
    let att = Hypervisor.Credit_scheduler.add_domain sched ~name:"a" ~weight:256 in
    ignore
      (Hypervisor.Credit_scheduler.add_vcpu sched att ~pin:0 (Attacks.Availability.main_program ()));
    ignore
      (Hypervisor.Credit_scheduler.add_vcpu sched att ~pin:1
         (Attacks.Availability.helper_program ()))
  end;
  Sim.Engine.run_until engine (Sim.Time.sec 60);
  if !finish = 0 then Sim.Time.sec 60 else !finish

let test_availability_starves () =
  let solo = victim_completion false in
  let attacked = victim_completion true in
  let slowdown = float_of_int attacked /. float_of_int solo in
  Alcotest.(check bool)
    (Printf.sprintf "slowdown > 10x (got %.1fx)" slowdown)
    true (slowdown > 10.0)

let test_availability_attacker_evades_debit () =
  (* The attacker's main vCPU sleeps across every 10 ms tick instant, so it
     is never debited: verify by checking its CPU usage is high while the
     victim's collapses. *)
  let engine = Sim.Engine.create () in
  let sched = Hypervisor.Credit_scheduler.create ~engine ~pcpus:2 () in
  let victim = Hypervisor.Credit_scheduler.add_domain sched ~name:"v" ~weight:256 in
  ignore
    (Hypervisor.Credit_scheduler.add_vcpu sched victim ~pin:0 (Hypervisor.Program.busy_loop ()));
  let att = Hypervisor.Credit_scheduler.add_domain sched ~name:"a" ~weight:256 in
  ignore (Hypervisor.Credit_scheduler.add_vcpu sched att ~pin:0 (Attacks.Availability.main_program ()));
  ignore
    (Hypervisor.Credit_scheduler.add_vcpu sched att ~pin:1 (Attacks.Availability.helper_program ()));
  Sim.Engine.run_until engine (Sim.Time.sec 10);
  let vshare = Sim.Time.to_sec (Hypervisor.Credit_scheduler.domain_runtime sched victim) /. 10.0 in
  Alcotest.(check bool)
    (Printf.sprintf "victim below 15%% (got %.0f%%)" (100. *. vshare))
    true (vshare < 0.15)

let test_attacker_vm_shape () =
  let vm = Attacks.Availability.attacker_vm ~vid:"a" ~owner:"m" () in
  Alcotest.(check int) "two vcpus" 2 (List.length (vm.Hypervisor.Vm.programs ()));
  Alcotest.(check (list (option int))) "pins" [ Some 3; Some 1 ]
    (Attacks.Availability.pins ~victim_pcpu:3 ~helper_pcpu:1)

(* --- Cache covert channel ----------------------------------------------------- *)

let run_cache_channel bits =
  let engine = Sim.Engine.create () in
  let cache = Hypervisor.Cache.create ~engine () in
  let sched = Hypervisor.Credit_scheduler.create ~engine ~pcpus:2 () in
  let s_dom = Hypervisor.Credit_scheduler.add_domain sched ~name:"s" ~weight:256 in
  let r_dom = Hypervisor.Credit_scheduler.add_domain sched ~name:"r" ~weight:256 in
  ignore
    (Hypervisor.Credit_scheduler.add_vcpu sched s_dom ~pin:0
       (Attacks.Cache_channel.sender_program cache ~owner:"s" ~bits ()));
  let recv, stream = Attacks.Cache_channel.receiver_program cache ~owner:"r" () in
  ignore (Hypervisor.Credit_scheduler.add_vcpu sched r_dom ~pin:1 recv);
  Sim.Engine.run_until engine (Sim.Time.ms (10 * (List.length bits + 10)));
  (Attacks.Cache_channel.received_bits ~count:(List.length bits) (stream ()), cache)

let cache_channel_roundtrip =
  QCheck.Test.make ~name:"cache channel transmits losslessly" ~count:10
    QCheck.(list_of_size (Gen.int_range 1 50) bool)
    (fun bits ->
      let received, _ = run_cache_channel bits in
      received = bits)

let test_cache_channel_miss_pattern () =
  let prng = Sim.Prng.create 4 in
  let bits = Attacks.Covert_channel.random_bits prng 60 in
  let _, cache = run_cache_channel bits in
  let windows = Hypervisor.Cache.miss_windows cache ~owner:"s" ~since:0 in
  let loud = Array.fold_left (fun acc w -> if w > 50 then acc + 1 else acc) 0 windows in
  let ones = List.length (List.filter Fun.id bits) in
  (* One loud window per transmitted 1 (thrash = group * ways misses). *)
  Alcotest.(check int) "loud windows = ones sent" ones loud

let test_cache_received_bits_slicing () =
  let stream = [ (3, true); (4, true); (5, false); (6, true); (7, false) ] in
  Alcotest.(check (list bool)) "slices start_round..+count" [ true; false ]
    (Attacks.Cache_channel.received_bits ~count:2 stream)

(* --- Malware -------------------------------------------------------------------- *)

let test_malware_hidden () =
  let vm =
    Hypervisor.Vm.make ~vid:"v" ~owner:"o" ~image:Hypervisor.Image.cirros
      ~flavor:Hypervisor.Flavor.small ()
  in
  let p = Attacks.Malware.infect_hidden vm () in
  Alcotest.(check bool) "hidden" true p.Hypervisor.Guest_os.hidden;
  Alcotest.(check bool) "not in guest view" false
    (List.mem p.Hypervisor.Guest_os.name (Hypervisor.Guest_os.visible_tasks vm.guest));
  Alcotest.(check bool) "in kernel view" true
    (List.mem p.Hypervisor.Guest_os.name (Hypervisor.Guest_os.kernel_tasks vm.guest))

let test_malware_visible () =
  let vm =
    Hypervisor.Vm.make ~vid:"v" ~owner:"o" ~image:Hypervisor.Image.cirros
      ~flavor:Hypervisor.Flavor.small ()
  in
  let p = Attacks.Malware.infect_visible vm () in
  Alcotest.(check bool) "in guest view" true
    (List.mem p.Hypervisor.Guest_os.name (Hypervisor.Guest_os.visible_tasks vm.guest))

let test_tampered_image () =
  let bad = Attacks.Malware.tampered_image Hypervisor.Image.fedora in
  Alcotest.(check bool) "hash differs" false
    (String.equal (Hypervisor.Image.hash bad) (Hypervisor.Image.hash Hypervisor.Image.fedora))

(* --- Network attacker -------------------------------------------------------------- *)

let msg dir payload =
  { Net.Network.seq = 1; src = "a"; dst = "b"; dir; payload }

let test_flip_byte () =
  let adv = Attacks.Network_attacker.flip_byte ~offset:2 ~min_len:4 () in
  (match adv (msg Net.Network.Request "abcdef") with
  | Net.Network.Replace p ->
      Alcotest.(check bool) "changed" false (String.equal p "abcdef");
      Alcotest.(check int) "same length" 6 (String.length p)
  | _ -> Alcotest.fail "expected Replace");
  match adv (msg Net.Network.Request "ab") with
  | Net.Network.Pass -> ()
  | _ -> Alcotest.fail "short messages pass"

let test_tamper_replies_only () =
  let adv = Attacks.Network_attacker.tamper_replies ~offset:0 ~min_len:1 () in
  (match adv (msg Net.Network.Request "request-bytes") with
  | Net.Network.Pass -> ()
  | _ -> Alcotest.fail "requests pass");
  match adv (msg Net.Network.Reply "reply-bytes") with
  | Net.Network.Replace _ -> ()
  | _ -> Alcotest.fail "replies tampered"

let test_replay_requests () =
  let adv = Attacks.Network_attacker.replay_requests () in
  (match adv (msg Net.Network.Request "first") with
  | Net.Network.Pass -> ()
  | _ -> Alcotest.fail "first passes");
  (match adv (msg Net.Network.Request "second") with
  | Net.Network.Replace p -> Alcotest.(check string) "replays first" "first" p
  | _ -> Alcotest.fail "expected replay");
  match adv (msg Net.Network.Reply "reply") with
  | Net.Network.Pass -> ()
  | _ -> Alcotest.fail "replies pass"

let test_passive_logs () =
  let seen = ref 0 in
  let adv = Attacks.Network_attacker.passive ~on_message:(fun _ -> incr seen) in
  (match adv (msg Net.Network.Request "x") with
  | Net.Network.Pass -> ()
  | _ -> Alcotest.fail "passive passes");
  Alcotest.(check int) "observed" 1 !seen

let test_drop_everything () =
  match Attacks.Network_attacker.drop_everything () (msg Net.Network.Request "x") with
  | Net.Network.Drop -> ()
  | _ -> Alcotest.fail "expected Drop"

let () =
  Alcotest.run "attacks"
    [
      ( "covert-channel",
        [
          qtest covert_roundtrip;
          Alcotest.test_case "histogram bimodal" `Quick test_covert_histogram_bimodal;
          Alcotest.test_case "BER helpers" `Quick test_covert_ber_helpers;
          Alcotest.test_case "decode clean trace" `Quick test_covert_decode_clean_trace;
          Alcotest.test_case "random bits deterministic" `Quick test_random_bits_deterministic;
        ] );
      ( "availability",
        [
          Alcotest.test_case "starves victim >10x" `Quick test_availability_starves;
          Alcotest.test_case "tick evasion" `Quick test_availability_attacker_evades_debit;
          Alcotest.test_case "attacker VM shape" `Quick test_attacker_vm_shape;
        ] );
      ( "cache-channel",
        [
          qtest cache_channel_roundtrip;
          Alcotest.test_case "miss pattern" `Quick test_cache_channel_miss_pattern;
          Alcotest.test_case "received_bits slicing" `Quick test_cache_received_bits_slicing;
        ] );
      ( "malware",
        [
          Alcotest.test_case "hidden process" `Quick test_malware_hidden;
          Alcotest.test_case "visible process" `Quick test_malware_visible;
          Alcotest.test_case "tampered image" `Quick test_tampered_image;
        ] );
      ( "network-attacker",
        [
          Alcotest.test_case "flip byte" `Quick test_flip_byte;
          Alcotest.test_case "tamper replies only" `Quick test_tamper_replies_only;
          Alcotest.test_case "replay requests" `Quick test_replay_requests;
          Alcotest.test_case "passive logs" `Quick test_passive_logs;
          Alcotest.test_case "drop everything" `Quick test_drop_everything;
        ] );
    ]
