(** Signed tree heads (RFC 6962 STHs) over an attestation-verdict log.

    An STH is the log operator's signed commitment to the entire log
    contents at a given size: once a customer or auditor holds an STH, the
    operator can only extend the log — rewriting or dropping an entry
    changes the root and is caught by the next consistency proof, and
    showing different customers different contents (a split view) yields
    two signed STHs of the same log that no consistency proof can
    reconcile, which is itself cryptographic evidence of equivocation. *)

type t = {
  log_id : string;  (** which log this head commits (one per AS / cluster) *)
  size : int;  (** number of entries committed *)
  root : string;  (** Merkle root over entries [0, size) *)
  at : Sim.Time.t;  (** simulated issue time *)
  signature : string;  (** RSA signature by the log operator *)
}

val sign : Crypto.Rsa.secret -> log_id:string -> size:int -> root:string -> at:Sim.Time.t -> t

val verify : key:Crypto.Rsa.public -> t -> bool
(** Checks the operator signature over the domain-separated STH payload. *)

val equal : t -> t -> bool

val encode : Wire.Codec.Enc.t -> t -> unit
val decode : Wire.Codec.Dec.t -> t

val to_string : t -> string
val of_string : string -> t option
(** Standalone wire form, for gossip datagrams. *)

val pp : Format.formatter -> t -> unit
