let poisson ~engine ~prng ~rate_per_s ~until fire =
  if rate_per_s <= 0.0 then invalid_arg "Load.poisson: rate must be positive";
  let interarrival () =
    (* U in (0, 1]: never take log 0. *)
    let u = 1.0 -. Sim.Prng.float prng 1.0 in
    let dt_us = -.log u /. rate_per_s *. 1_000_000.0 in
    max 1 (int_of_float (Float.round dt_us))
  in
  let rec arm () =
    ignore
      (Sim.Engine.schedule_after engine ~delay:(interarrival ()) (fun () ->
           if Sim.Engine.now engine <= until then begin
             fire ();
             arm ()
           end)
        : Sim.Engine.handle)
  in
  arm ()
