lib/monitors/integrity_unit.mli: Hypervisor
