type t = { name : string; size_mb : int; content : string }

let pristine_content name = "image-content|" ^ name

let make ~name ~size_mb = { name; size_mb; content = pristine_content name }

let name t = t.name
let size_mb t = t.size_mb
let hash t = Crypto.Sha256.digest (Printf.sprintf "%s|%d|%s" t.name t.size_mb t.content)

let tamper t ~payload = { t with content = t.content ^ "|malware:" ^ payload }
let is_pristine t = String.equal t.content (pristine_content t.name)

(* The paper's three test images; sizes reflect their real relative bulk
   (cirros is a ~13 MB test image, fedora and ubuntu are full distros). *)
let cirros = make ~name:"cirros" ~size_mb:13
let fedora = make ~name:"fedora" ~size_mb:230
let ubuntu = make ~name:"ubuntu" ~size_mb:250

let golden_hash ~name =
  let size_mb =
    match name with
    | "cirros" -> 13
    | "fedora" -> 230
    | "ubuntu" -> 250
    | _ -> 0
  in
  if size_mb = 0 then hash (make ~name ~size_mb:100) else hash (make ~name ~size_mb)
