type row = {
  budget : Sim.Time.t;  (* freshness budget: the re-attestation period *)
  storm : string;  (* "none" | "rack-compromise" | "image-cve" | "migration-wave" *)
  domains : int;
  host_wall_s : float;
  r : Fleet.Driver.result;
}

type sharded = { curve : row list; identical : bool }

type result = { seed : int; scale : string; rows : row list; sharded : sharded }

(* The monitored fleet: ~10^4 VMs whose every verdict must stay inside the
   freshness budget, so the scheduler itself offers vms/budget probes per
   second — the probe stream, not the open-loop arrivals, is the load.
   [`Default] sizes the AS capacity to just cover the tightest budget's
   probe rate (10^4 VMs / 5 s = 2000 probes/s against 16x16 slots);
   [`Smoke] shrinks it to CI size but keeps as_count > domains > 1 and a
   probe rate near saturation, so shedding and retry paths stay live. *)
let scenario ~seed = function
  | `Default ->
      ( {
          Fleet.Driver.default_config with
          seed;
          servers = 500;
          vms = 10_000;
          as_count = 16;
          as_capacity = 16;
          queue_depth = 64;
          ttl = Sim.Time.sec 30;
          rate_per_s = 100.0;
          duration = Sim.Time.sec 20;
          drain = Sim.Time.sec 20;
          churn_period = Sim.Time.sec 1;
          hot_vms = 1024;
          epoch = Sim.Time.ms 250;
        },
        Sim.Time.ms 500,
        [ Sim.Time.sec 5; Sim.Time.sec 10 ],
        Sim.Time.sec 5,
        [ 1; 2; 4; 8 ] )
  | `Smoke ->
      ( {
          Fleet.Driver.default_config with
          seed;
          servers = 32;
          vms = 80;
          as_count = 4;
          as_capacity = 2;
          queue_depth = 8;
          ttl = Sim.Time.sec 10;
          rate_per_s = 20.0;
          duration = Sim.Time.sec 6;
          drain = Sim.Time.sec 6;
          churn_period = Sim.Time.ms 500;
          hot_vms = 16;
          epoch = Sim.Time.ms 50;
        },
        Sim.Time.ms 250,
        [ Sim.Time.sec 2; Sim.Time.sec 4 ],
        Sim.Time.sec 2,
        [ 1; 2 ] )

let scale_of_env () =
  match Sys.getenv_opt "CLOUDMONATT_FLEET_SCALE" with
  | Some "smoke" -> `Smoke
  | _ -> `Default

(* Lead scales with the budget (a fixed lead would turn a tight budget
   into near-continuous probing) but always covers two ticks, the floor
   {!Fleet.Monitor} documents for probes to complete in time. *)
let monitor_of ~tick ~budget ~storms =
  {
    Fleet.Monitor.default_config with
    tick;
    budget;
    recheck_budget = budget / 2;
    lead = max (2 * tick) (budget / 4);
    storms;
  }

let storm_menu ~at ~vms =
  [
    ("none", []);
    ("rack-compromise", [ Fleet.Monitor.Rack_compromise { at; cluster = 0 } ]);
    ( "image-cve",
      [ Fleet.Monitor.Image_cve { at; property = Core.Property.Runtime_integrity } ] );
    ( "migration-wave",
      [ Fleet.Monitor.Migration_wave { at; count = max 1 (vms / 10) } ] );
  ]

let timed config =
  let t0 = Unix.gettimeofday () in
  let r = Fleet.Driver.run config in
  (r, Unix.gettimeofday () -. t0)

let time_to_detect (r : Fleet.Driver.result) =
  List.find_map
    (fun (s : Fleet.Driver.storm_outcome) ->
      if String.equal s.Fleet.Driver.storm "rack-compromise" then
        Some (Option.map (fun d -> d - s.Fleet.Driver.at) s.Fleet.Driver.detected_at)
      else None)
    r.Fleet.Driver.mon_storms

(* The SLO the CI gate watches: a planted rack compromise must surface
   within two re-attestation periods.  One period is the worst-case gap
   before the next scheduled probe of a just-refreshed victim; the second
   absorbs queueing, shed-retry and cross-shard epoch delivery. *)
let detect_bound row = 2 * row.budget

let row_detects row =
  match time_to_detect row.r with
  | None -> true (* no rack storm planted: nothing to detect *)
  | Some None -> false
  | Some (Some d) -> d <= detect_bound row

let run ?(seed = 2015) ?scale () =
  let scale = match scale with Some s -> s | None -> scale_of_env () in
  let base, tick, budgets, storm_at, domain_counts = scenario ~seed scale in
  let scale_name = match scale with `Default -> "default" | `Smoke -> "smoke" in
  let row ~budget ~storm ~storms ~domains =
    let config =
      {
        base with
        Fleet.Driver.monitor = Some (monitor_of ~tick ~budget ~storms);
        domains;
      }
    in
    let r, host_wall_s = timed config in
    { budget; storm; domains; host_wall_s; r }
  in
  let rows =
    List.concat_map
      (fun budget ->
        List.map
          (fun (storm, storms) -> row ~budget ~storm ~storms ~domains:1)
          (storm_menu ~at:storm_at ~vms:base.Fleet.Driver.vms))
      budgets
  in
  (* The domain curve runs the headline scenario — tightest budget, rack
     compromise — once per domain count; identity is judged on
     {!Fleet.Driver.fingerprint}, exactly as the fleet experiment does. *)
  let sharded =
    let budget = List.hd budgets in
    let storm, storms =
      List.nth (storm_menu ~at:storm_at ~vms:base.Fleet.Driver.vms) 1
    in
    let curve =
      List.map (fun domains -> row ~budget ~storm ~storms ~domains) domain_counts
    in
    let identical =
      match curve with
      | [] -> true
      | base :: rest ->
          let fp = Fleet.Driver.fingerprint base.r in
          List.for_all
            (fun row -> String.equal (Fleet.Driver.fingerprint row.r) fp)
            rest
    in
    { curve; identical }
  in
  { seed; scale = scale_name; rows; sharded }

let identical_across_domains { sharded; _ } = sharded.identical

let clean { rows; sharded; _ } =
  sharded.identical
  && List.for_all row_detects (rows @ sharded.curve)
  && List.exists (fun row -> row.r.Fleet.Driver.mon_fresh_final > 0.0) rows

let print ({ seed; scale; rows; sharded } as result) =
  Common.section
    (Printf.sprintf "Monitor: continuous re-attestation (seed %d, %s sweep)" seed scale);
  (match rows with
  | [] -> ()
  | base :: _ ->
      Printf.printf "%d VMs, %d AS shards, %.0f req/s background arrivals\n\n"
        base.r.Fleet.Driver.config.Fleet.Driver.vms
        base.r.Fleet.Driver.config.Fleet.Driver.as_count
        base.r.Fleet.Driver.config.Fleet.Driver.rate_per_s);
  Printf.printf "%7s %-15s %3s | %7s %7s %6s %6s %6s | %5s %5s %5s | %8s\n" "budget"
    "storm" "dom" "sched" "srv" "miss" "shed" "dedup" "f.min" "f.avg" "f.end" "detect";
  let print_row row =
    let r = row.r in
    let detect =
      match time_to_detect r with
      | None -> "-"
      | Some None -> "MISSED"
      | Some (Some d) -> Printf.sprintf "%.0fms" (Sim.Time.to_ms d)
    in
    Printf.printf "%6.0fs %-15s %3d | %7d %7d %6d %6d %6d | %5.2f %5.2f %5.2f | %8s\n"
      (Sim.Time.to_sec row.budget) row.storm row.domains r.Fleet.Driver.mon_scheduled
      r.Fleet.Driver.mon_served
      (r.Fleet.Driver.mon_missed_periodic + r.Fleet.Driver.mon_missed_recheck)
      r.Fleet.Driver.mon_shed r.Fleet.Driver.mon_dedups r.Fleet.Driver.mon_fresh_min
      r.Fleet.Driver.mon_fresh_mean r.Fleet.Driver.mon_fresh_final detect
  in
  List.iter print_row rows;
  (match sharded.curve with
  | [] -> ()
  | base :: _ ->
      Printf.printf
        "\nDomain curve (budget %.0fs, %s), fingerprints must coincide:\n"
        (Sim.Time.to_sec base.budget) base.storm;
      List.iter
        (fun row ->
          Printf.printf "  domains=%d  host %6.2fs wall\n" row.domains row.host_wall_s)
        sharded.curve;
      Printf.printf "  results byte-identical across domain counts: %b\n"
        sharded.identical);
  Printf.printf "verdict: %s\n" (if clean result then "clean" else "SLO VIOLATED")

let storm_to_json (s : Fleet.Driver.storm_outcome) =
  Json.Obj
    ([
       ("storm", Json.Str s.Fleet.Driver.storm);
       ("at_ms", Json.Float (Sim.Time.to_ms s.Fleet.Driver.at));
       ("affected", Json.Int s.Fleet.Driver.affected);
     ]
    @
    match s.Fleet.Driver.detected_at with
    | None -> []
    | Some d ->
        [
          ("detected_at_ms", Json.Float (Sim.Time.to_ms d));
          ("time_to_detect_ms", Json.Float (Sim.Time.to_ms (d - s.Fleet.Driver.at)));
        ])

(* [host = false] drops the wall-clock field — the only nondeterministic
   byte in a row — so determinism tests can compare full JSON documents. *)
let row_to_json ?(host = true) row =
  let r = row.r in
  Json.Obj
    ([
       ("budget_ms", Json.Float (Sim.Time.to_ms row.budget));
       ("storm", Json.Str row.storm);
       ("domains", Json.Int row.domains);
       ("vms_total", Json.Int r.Fleet.Driver.config.Fleet.Driver.vms);
     ]
    @ (if host then [ ("host_wall_s", Json.Float row.host_wall_s) ] else [])
    @ [
        ("offered", Json.Int r.Fleet.Driver.offered);
        ("served", Json.Int r.Fleet.Driver.served);
        ( "mon",
          Json.Obj
            [
              ("scheduled", Json.Int r.Fleet.Driver.mon_scheduled);
              ("served", Json.Int r.Fleet.Driver.mon_served);
              ("missed_periodic", Json.Int r.Fleet.Driver.mon_missed_periodic);
              ("missed_recheck", Json.Int r.Fleet.Driver.mon_missed_recheck);
              ("shed", Json.Int r.Fleet.Driver.mon_shed);
              ("dedups", Json.Int r.Fleet.Driver.mon_dedups);
              ("ticks", Json.Int r.Fleet.Driver.mon_ticks);
              ("entries", Json.Int r.Fleet.Driver.mon_entries);
              ("entry_dups", Json.Int r.Fleet.Driver.mon_entry_dups);
            ] );
        ( "fresh",
          Json.Obj
            [
              ("min", Json.Float r.Fleet.Driver.mon_fresh_min);
              ("mean", Json.Float r.Fleet.Driver.mon_fresh_mean);
              ("final", Json.Float r.Fleet.Driver.mon_fresh_final);
            ] );
        ("detect_bound_ms", Json.Float (Sim.Time.to_ms (detect_bound row)));
        ("detects_in_bound", Json.Bool (row_detects row));
        ("storms", Json.List (List.map storm_to_json r.Fleet.Driver.mon_storms));
        ("p95_ms", Json.Float r.Fleet.Driver.p95_ms);
        ("max_queue_depth", Json.Int r.Fleet.Driver.max_queue_depth);
        ("trace_digest", Json.Str r.Fleet.Driver.trace_digest);
      ])

let to_json ?host ({ seed; scale; rows; sharded } as result) =
  Json.Obj
    [
      ("experiment", Json.Str "monitor");
      ("seed", Json.Int seed);
      ("scale", Json.Str scale);
      ("rows", Json.List (List.map (row_to_json ?host) rows));
      ( "sharded",
        Json.Obj
          ([ ("identical_across_domains", Json.Bool sharded.identical) ]
          @
          match sharded.curve with
          | [] -> []
          | base :: _ ->
              [
                ("budget_ms", Json.Float (Sim.Time.to_ms base.budget));
                ("storm", Json.Str base.storm);
                ("fingerprint", Json.Str (Fleet.Driver.fingerprint base.r));
                ( "domains",
                  Json.List (List.map (fun row -> Json.Int row.domains) sharded.curve)
                );
              ]
              @
              if match host with Some false -> false | _ -> true then
                [
                  ( "host_wall_s",
                    Json.List
                      (List.map (fun row -> Json.Float row.host_wall_s) sharded.curve)
                  );
                ]
              else []) );
      ("clean", Json.Bool (clean result));
    ]
