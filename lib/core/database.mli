(** Controller database (the modified nova database of paper section 6.1):
    VM records with their requested security properties, and per-server
    monitoring/attestation capabilities. *)

type vm_state = Building | Active | Suspended | Migrating | Terminated

val vm_state_to_string : vm_state -> string

type vm_record = {
  vid : string;
  owner : string;
  image_name : string;
  flavor : Hypervisor.Flavor.t;
  properties : Property.t list;  (** security properties to monitor *)
  mutable host : string option;
  mutable state : vm_state;
}

type server_record = {
  name : string;
  secure : bool;  (** has a trust backend *)
  backend : Tpm.Backend.kind;  (** which one ([Classic] on insecure servers too) *)
  monitoring : Property.t list;  (** properties it can monitor *)
}

type t

val create : unit -> t

val add_server : t -> server_record -> unit
val server : t -> string -> server_record option
val servers : t -> server_record list

val add_vm : t -> vm_record -> unit
val vm : t -> string -> vm_record option
val vms : t -> vm_record list
val vms_on : t -> string -> vm_record list

val set_host : t -> vid:string -> string option -> unit
val set_state : t -> vid:string -> vm_state -> unit
val remove_vm : t -> vid:string -> unit
