lib/net/secure_channel.mli: Ca Crypto Format
