(** Batched-attestation frontier experiment.

    Sweeps Merkle batch size x offered arrival rate x AS shard count over
    the deterministic fleet (cache off) and reports the served-throughput
    and tail-latency frontier versus batch size — the BENCH_batch.json
    trajectory artifact.  Batch size 1 runs the exact pre-batching driver
    configuration, so those rows reproduce the unbatched fleet numbers. *)

type row = { batch : int; rate : float; as_count : int; r : Fleet.Driver.result }

type result = { seed : int; scale : string; rows : row list }

val run : ?seed:int -> ?scale:[ `Default | `Smoke ] -> unit -> result
(** [scale] defaults to [`Smoke] when the environment variable
    [CLOUDMONATT_FLEET_SCALE] is ["smoke"] (the CI setting), else
    [`Default]. *)

val print : result -> unit
val to_json : result -> Json.t
