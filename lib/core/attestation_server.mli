(** Attestation Server (the "oat appraiser" + interpreter of Figure 8).

    Acts as attestation requester and appraiser: asked by the Cloud
    Controller to attest property P of VM Vid on server I, it opens a
    secure channel to that server's attestation client, sends the
    measurement list rM with a fresh nonce N3, verifies the signed response
    (privacy-CA certificate, session-key signature, quote Q3, nonce),
    interprets the measurements, and returns a report signed with its own
    identity key SKa together with the quote Q2.

    Every attestation also returns its simulated cost ledger, which the
    evaluation benches turn into the Figure 9/11 timings. *)

type t

type error =
  [ `Server_unreachable of string
  | `Channel of Net.Secure_channel.error
  | `Server_refused of string
  | `Verification of Protocol.verify_error
  | `Uncertified_key
  | `No_platform_root ]

val pp_error : Format.formatter -> error -> unit

val create :
  net:Net.Network.t ->
  ca:Net.Ca.t ->
  pca:Privacy_ca.t ->
  refs:Interpret.refs ->
  seed:string ->
  ?key_bits:int ->
  ?name:string ->
  unit ->
  t
(** Registers nothing on the network by itself (the controller talks to it
    through {!handle_controller_request} wired up by {!Cloud}); [name]
    defaults to ["attestation-server"]. *)

val name : t -> string
val identity : t -> Net.Secure_channel.Identity.t
val public_key : t -> Crypto.Rsa.public
val refs : t -> Interpret.refs
val set_refs : t -> Interpret.refs -> unit

val set_vm_image_lookup : t -> (string -> string option) -> unit
(** How the interpreter resolves Vid -> image name (reads the controller's
    nova database in the prototype). *)

val set_clock : t -> (unit -> Sim.Time.t) -> unit
(** Wire the simulation clock in (done by {!Cloud}); reports carry the
    production time. *)

val set_attest_attempts : t -> int -> unit
(** How many from-scratch attestation rounds {!attest} may run before it
    degrades the verdict to [Unknown] (clamped to at least 1; default 2). *)

val set_backend_lookup : t -> (string -> Tpm.Backend.kind) -> unit
(** Which trust backend each cloud server runs, keyed by server name
    (wired by {!Cloud} from the controller's database).  Defaults to
    [Classic] everywhere.  The lookup selects the verification path:
    classic and vTPM endorsements go through the Privacy CA — the vTPM
    registry additionally enforcing the binding epoch, so a
    restored-but-not-rebound module yields a signed [Compromised] verdict
    rather than a certificate — and CVM report chains are checked against
    the hardware vendor root alone. *)

val set_platform_root : t -> Crypto.Rsa.public -> unit
(** The hardware vendor's root verification key, required before any
    [Cvm_report] server can be appraised ([`No_platform_root] otherwise). *)

val enable_audit : t -> Audit.Log.t
(** Switch the verdict transparency log on (idempotent): every signed
    verdict — healthy, compromised, unknown or degraded — is appended to an
    append-only Merkle log keyed by this AS's identity, and service replies
    gain a trailing inclusion receipt the controller can verify.  Off by
    default; when off, replies are byte-identical to the pre-audit
    format. *)

val audit_log : t -> Audit.Log.t option

val attest :
  t ->
  vid:string ->
  server:string ->
  property:Property.t ->
  nonce:string ->
  (Protocol.as_report, error) result * Ledger.t
(** One full measurement-collection + interpretation round.  The nonce is
    the controller's N2, echoed in the signed report.

    Rides the fault-tolerance stack: messages go through
    {!Net.Network.call_with_retry}, records through
    {!Net.Secure_channel.Client.call_robust}, and if the attestation path
    is still unavailable after the configured rounds (all transport retries
    exhausted, or an uncurable sequence desync) the call returns [Ok] of a
    signed report with status [Report.Unknown reason] rather than raising or
    hanging.  Failures that look like an active attack — authentication or
    verification failures, malformed replies, unknown hosts — never degrade
    and stay hard errors. *)

val attest_batch :
  t ->
  server:string ->
  items:(string * Property.t) list ->
  nonce:string ->
  ( (string * Property.t * (Protocol.as_report, error) result) list,
    error )
  result
  * Ledger.t
(** Batched appraisal of many VMs on one cloud server: a single
    measurement round returns one Merkle-root signature covering every
    report, verified once; each report is then checked against its own
    O(log n) inclusion proof and gets an {e individual} signed verdict.
    A report whose proof fails is rejected alone ([Error] in its slot)
    while the rest of the batch stands.  Batch-wide availability failures
    degrade every item to a signed [Unknown], like {!attest}. *)

(** {2 Introspection for tests and benches} *)

type history_entry = {
  at : Sim.Time.t;
  vid : string;
  property : Property.t;
  status : Report.status;
}

val history : t -> history_entry list
(** All appraisals, oldest first (the "oat database"). *)

val attestations_done : t -> int

val degraded_count : t -> int
(** How many attestations ended in a degraded [Unknown] verdict because the
    network stayed unavailable through every retry. *)

(** {2 Network service} *)

val request_handler : t -> peer:string -> string -> string
(** The on-request function for the AS's secure channel: decodes a
    {!Protocol.as_request} (or a {!Protocol.batch_as_request}, recognised
    by its wire magic), runs {!attest} / {!attest_batch} and encodes the
    reply (report(s) + cost ledger entries, so the controller can account
    end-to-end time). *)

val decode_service_reply :
  string ->
  ( Protocol.as_report * (string * Sim.Time.t) list * Audit.Receipt.t option,
    string )
  result
(** Parse a {!request_handler} reply on the controller side.  The receipt
    is [Some] exactly when the AS has auditing enabled. *)

val decode_batch_service_reply :
  string ->
  ( (Protocol.as_report, string) result list
    * (string * Sim.Time.t) list
    * Audit.Receipt.t list,
    string )
  result
(** Parse a batched {!request_handler} reply: one [Ok report] or
    [Error reason] per requested item, in request order, plus the shared
    cost ledger.  With auditing on, the receipt list pairs with the [Ok]
    reports in order; with auditing off it is empty. *)
