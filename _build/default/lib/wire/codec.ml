exception Error of string

module Enc = struct
  type t = Buffer.t

  let create () = Buffer.create 128
  let to_string = Buffer.contents

  let u8 b v =
    if v < 0 || v > 0xff then raise (Error "u8 out of range");
    Buffer.add_char b (Char.chr v)

  let u16 b v =
    if v < 0 || v > 0xffff then raise (Error "u16 out of range");
    Buffer.add_char b (Char.chr (v lsr 8));
    Buffer.add_char b (Char.chr (v land 0xff))

  let u32 b v =
    if v < 0 || v > 0xffffffff then raise (Error "u32 out of range");
    for i = 3 downto 0 do
      Buffer.add_char b (Char.chr ((v lsr (8 * i)) land 0xff))
    done

  let int b v =
    if v < 0 then raise (Error "int must be non-negative");
    for i = 7 downto 0 do
      Buffer.add_char b (Char.chr ((v lsr (8 * i)) land 0xff))
    done

  let bool b v = u8 b (if v then 1 else 0)

  let str b s =
    u32 b (String.length s);
    Buffer.add_string b s

  let raw b s = Buffer.add_string b s

  let list b f xs =
    u32 b (List.length xs);
    List.iter f xs

  let option b f = function
    | None -> u8 b 0
    | Some x ->
        u8 b 1;
        f x

  let int_array b a =
    u32 b (Array.length a);
    Array.iter (int b) a
end

module Dec = struct
  type t = { s : string; mutable pos : int }

  let of_string s = { s; pos = 0 }

  let need d n =
    if d.pos + n > String.length d.s then raise (Error "unexpected end of input")

  let u8 d =
    need d 1;
    let v = Char.code d.s.[d.pos] in
    d.pos <- d.pos + 1;
    v

  let u16 d =
    let hi = u8 d in
    let lo = u8 d in
    (hi lsl 8) lor lo

  let u32 d =
    let acc = ref 0 in
    for _ = 1 to 4 do
      acc := (!acc lsl 8) lor u8 d
    done;
    !acc

  let int d =
    let acc = ref 0 in
    for _ = 1 to 8 do
      acc := (!acc lsl 8) lor u8 d
    done;
    if !acc < 0 then raise (Error "int overflow");
    !acc

  let bool d =
    match u8 d with
    | 0 -> false
    | 1 -> true
    | _ -> raise (Error "bad bool")

  let raw d n =
    need d n;
    let v = String.sub d.s d.pos n in
    d.pos <- d.pos + n;
    v

  let str d =
    let n = u32 d in
    raw d n

  let list d f =
    let n = u32 d in
    if n > 10_000_000 then raise (Error "list too long");
    List.init n (fun _ -> f d)

  let option d f =
    match u8 d with
    | 0 -> None
    | 1 -> Some (f d)
    | _ -> raise (Error "bad option tag")

  let int_array d =
    let n = u32 d in
    if n > 10_000_000 then raise (Error "array too long");
    Array.init n (fun _ -> int d)

  let remaining d = String.length d.s - d.pos

  let expect_end d = if remaining d <> 0 then raise (Error "trailing bytes")
end

let encode f =
  let e = Enc.create () in
  f e;
  Enc.to_string e

let decode s f =
  let d = Dec.of_string s in
  let v = f d in
  Dec.expect_end d;
  v

let decode_opt s f = try Some (decode s f) with Error _ -> None
