(** Shared experiment plumbing. *)

val fast_config : seed:int -> Core.Cloud.config
(** The paper's 3-server testbed shape, with 512-bit identity keys so the
    real cryptography runs fast.  Simulated attestation latencies come from
    the calibrated cost model, not from host CPU time, so small keys do not
    distort any reported number. *)

val two_pcpu_config : seed:int -> Core.Cloud.config
(** Variant with 2 pCPUs per server, for the co-residency experiments
    (victim and attacker share pCPU 0; helper vCPUs live on pCPU 1). *)

val solo_victim_time : Workloads.Spec.t -> Sim.Time.t
(** Completion time of a SPEC victim running alone on a pCPU (the
    normalisation baseline of Figures 6 and 7). *)

val bar : float -> string
(** Tiny ASCII bar for table printing (~1 char per 10%). *)

val section : string -> unit
(** Print an experiment header. *)
