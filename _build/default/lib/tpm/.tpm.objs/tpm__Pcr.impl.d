lib/tpm/pcr.ml: Array Crypto List Printf Stdlib String
