type row = {
  rate : float;
  as_count : int;
  ttl : Sim.Time.t;
  domains : int;
  host_wall_s : float;
  r : Fleet.Driver.result;
}

type sharded = { curve : row list; identical : bool }

type result = { seed : int; scale : string; rows : row list; sharded : sharded }

type sweep = {
  rates : float list;
  as_counts : int list;
  ttls : Sim.Time.t list;
  base : Fleet.Driver.config;
}

let default_sweep ~seed =
  {
    rates = [ 4.0; 8.0; 16.0 ];
    as_counts = [ 1; 2; 4 ];
    ttls = [ 0; Sim.Time.sec 30 ];
    base = { Fleet.Driver.default_config with seed };
  }

let smoke_sweep ~seed =
  {
    (* 24 req/s saturates one capacity-1 shard (~9.4 req/s cold with the
       CRT-recalibrated quote_sign), so even the smoke sweep shows the
       served-throughput gain from sharding. *)
    rates = [ 24.0 ];
    as_counts = [ 1; 2 ];
    ttls = [ 0; Sim.Time.sec 10 ];
    base =
      {
        Fleet.Driver.default_config with
        seed;
        servers = 40;
        vms = 200;
        duration = Sim.Time.sec 10;
        drain = Sim.Time.sec 10;
        hot_vms = 32;
      };
  }

(* The sharded scaling scenario: the fleet the epoch-barrier driver exists
   for.  [`Default] is the headline row — 10^5 VMs offered >10^3 req/s —
   run once per domain count to (a) gate byte-identity of the results and
   (b) record the host wall-clock curve.  [`Smoke] shrinks it to CI size
   but keeps as_count > domains > 1 so the barrier protocol is exercised. *)
let sharded_scenario ~seed = function
  | `Default ->
      ( {
          Fleet.Driver.default_config with
          seed;
          servers = 2000;
          vms = 100_000;
          as_count = 16;
          as_capacity = 16;
          queue_depth = 64;
          ttl = Sim.Time.sec 30;
          rate_per_s = 1200.0;
          duration = Sim.Time.sec 30;
          drain = Sim.Time.sec 30;
          churn_period = Sim.Time.sec 1;
          hot_vms = 4096;
          epoch = Sim.Time.ms 250;
        },
        [ 1; 2; 4; 8 ] )
  | `Smoke ->
      ( {
          Fleet.Driver.default_config with
          seed;
          servers = 64;
          vms = 400;
          as_count = 4;
          as_capacity = 2;
          queue_depth = 8;
          ttl = Sim.Time.sec 10;
          rate_per_s = 40.0;
          duration = Sim.Time.sec 5;
          drain = Sim.Time.sec 5;
          churn_period = Sim.Time.ms 500;
          hot_vms = 32;
          epoch = Sim.Time.ms 50;
        },
        [ 1; 2 ] )

let scale_of_env () =
  match Sys.getenv_opt "CLOUDMONATT_FLEET_SCALE" with
  | Some "smoke" -> `Smoke
  | _ -> `Default

let timed config =
  let t0 = Unix.gettimeofday () in
  let r = Fleet.Driver.run config in
  (r, Unix.gettimeofday () -. t0)

let run ?(seed = 2015) ?scale () =
  let scale = match scale with Some s -> s | None -> scale_of_env () in
  let sweep, scale_name =
    match scale with
    | `Default -> (default_sweep ~seed, "default")
    | `Smoke -> (smoke_sweep ~seed, "smoke")
  in
  let rows =
    List.concat_map
      (fun rate ->
        List.concat_map
          (fun as_count ->
            List.map
              (fun ttl ->
                let config =
                  { sweep.base with Fleet.Driver.rate_per_s = rate; as_count; ttl }
                in
                let r, host_wall_s = timed config in
                { rate; as_count; ttl; domains = 1; host_wall_s; r })
              sweep.ttls)
          sweep.as_counts)
      sweep.rates
  in
  (* One heterogeneous-backend row at the top offered rate: three AS shards,
     each fronting a different trust backend, cache off — the per-backend
     served split shows how the cheaper vTPM/CVM crypto shifts capacity. *)
  let hetero =
    let rate = List.fold_left Float.max 0.0 sweep.rates in
    let config =
      {
        sweep.base with
        Fleet.Driver.rate_per_s = rate;
        as_count = 3;
        ttl = 0;
        backends = [| Tpm.Backend.Classic; Tpm.Backend.Evtpm; Tpm.Backend.Cvm_report |];
      }
    in
    let r, host_wall_s = timed config in
    { rate; as_count = 3; ttl = 0; domains = 1; host_wall_s; r }
  in
  (* The sharded scenario, once per domain count.  Identity is judged on
     {!Fleet.Driver.fingerprint}, which hashes every result field except
     the config — counters, percentiles and the per-shard trace digest. *)
  let sharded =
    let config, domain_counts = sharded_scenario ~seed scale in
    let curve =
      List.map
        (fun domains ->
          let r, host_wall_s = timed { config with Fleet.Driver.domains } in
          {
            rate = config.Fleet.Driver.rate_per_s;
            as_count = config.Fleet.Driver.as_count;
            ttl = config.Fleet.Driver.ttl;
            domains;
            host_wall_s;
            r;
          })
        domain_counts
    in
    let identical =
      match curve with
      | [] -> true
      | base :: rest ->
          let fp = Fleet.Driver.fingerprint base.r in
          List.for_all
            (fun row -> String.equal (Fleet.Driver.fingerprint row.r) fp)
            rest
    in
    { curve; identical }
  in
  { seed; scale = scale_name; rows = rows @ [ hetero ] @ sharded.curve; sharded }

let identical_across_domains { sharded; _ } = sharded.identical

let print { seed; scale; rows; sharded } =
  Common.section
    (Printf.sprintf "Fleet: attestation at scale (seed %d, %s sweep)" seed scale);
  Printf.printf "cost model: cold attestation %.0f ms end-to-end, cache hit %.0f ms\n\n"
    Fleet.Driver.cold_attest_ms Fleet.Driver.cache_hit_ms;
  Printf.printf "%5s %3s %7s %3s | %7s %7s %7s | %7s %7s %7s | %5s %6s %5s %5s\n" "rate"
    "AS" "ttl(s)" "dom" "off/s" "srv/s" "shed" "p50ms" "p95ms" "p99ms" "hit%" "coal"
    "meas" "maxQ";
  List.iter
    (fun { rate; as_count; ttl; domains; r; _ } ->
      Printf.printf
        "%5.1f %3d %7.0f %3d | %7.2f %7.2f %7d | %7.0f %7.0f %7.0f | %5.1f %6d %5d %5d\n"
        rate as_count (Sim.Time.to_sec ttl) domains r.Fleet.Driver.offered_rps
        r.Fleet.Driver.served_rps
        (r.Fleet.Driver.shed_customer + r.Fleet.Driver.shed_periodic
       + r.Fleet.Driver.shed_recheck)
        r.Fleet.Driver.p50_ms r.Fleet.Driver.p95_ms r.Fleet.Driver.p99_ms
        (100.0 *. r.Fleet.Driver.cache_hit_rate)
        r.Fleet.Driver.coalesced r.Fleet.Driver.measurements r.Fleet.Driver.max_queue_depth)
    rows;
  (* Shard-scaling summary: served throughput at the highest offered rate,
     cache off — the number the acceptance criterion watches. *)
  let top_rate = List.fold_left (fun acc r -> Float.max acc r.rate) 0.0 rows in
  let scaling =
    List.filter (fun r -> r.rate = top_rate && r.ttl = 0 && r.domains = 1) rows
    |> List.sort (fun a b -> compare a.as_count b.as_count)
  in
  if scaling <> [] then begin
    Printf.printf "\nShard scaling at %.0f req/s offered (cache off):\n" top_rate;
    List.iter
      (fun { as_count; r; _ } ->
        Printf.printf "  %d AS: %6.2f served/s  %s\n" as_count r.Fleet.Driver.served_rps
          (Common.bar r.Fleet.Driver.served_rps))
      scaling
  end;
  (* Per-backend split of any heterogeneous rows. *)
  List.iter
    (fun { r; _ } ->
      match r.Fleet.Driver.served_by_backend with
      | [] | [ _ ] -> ()
      | served ->
          let duration_s =
            Sim.Time.to_sec r.Fleet.Driver.config.Fleet.Driver.duration
          in
          Printf.printf "\nHeterogeneous backends, served split:\n";
          List.iter
            (fun (kind, n) ->
              Printf.printf "  %-8s %6d served  %6.2f/s\n" kind n
                (float_of_int n /. duration_s))
            served)
    rows;
  (* Parallel-shard scaling: the same simulation at each domain count must
     be byte-identical; the host wall clock is what parallelism buys. *)
  (match sharded.curve with
  | [] -> ()
  | base :: _ ->
      Printf.printf
        "\nEpoch-barrier sharding: %d VMs, %d AS shards, %.0f req/s offered, %d epochs:\n"
        base.r.Fleet.Driver.config.Fleet.Driver.vms
        base.r.Fleet.Driver.config.Fleet.Driver.as_count base.rate
        base.r.Fleet.Driver.epochs;
      List.iter
        (fun row ->
          Printf.printf "  domains=%d  %7.2f served/s  host %6.2fs wall\n" row.domains
            row.r.Fleet.Driver.served_rps row.host_wall_s)
        sharded.curve;
      Printf.printf "  results byte-identical across domain counts: %b\n"
        sharded.identical)

(* Present only when the row ran a non-default backend mix, mirroring the
   audit_fields discipline: all-classic rows keep their historical bytes. *)
let backend_fields (r : Fleet.Driver.result) =
  let bs = r.Fleet.Driver.config.Fleet.Driver.backends in
  let all_classic = Array.for_all (fun k -> k = Tpm.Backend.Classic) bs in
  if all_classic then []
  else
    let duration_s =
      Sim.Time.to_sec r.Fleet.Driver.config.Fleet.Driver.duration
    in
    [
      ( "backends",
        Json.Obj
          [
            ( "mix",
              Json.List
                (Array.to_list
                   (Array.map (fun k -> Json.Str (Tpm.Backend.kind_to_string k)) bs)) );
            ( "served",
              Json.Obj
                (List.map
                   (fun (k, n) -> (k, Json.Int n))
                   r.Fleet.Driver.served_by_backend) );
            ( "served_rps",
              Json.Obj
                (List.map
                   (fun (k, n) -> (k, Json.Float (float_of_int n /. duration_s)))
                   r.Fleet.Driver.served_by_backend) );
          ] );
    ]

(* Present only when the row ran with auditing on, so artifacts from
   audit-off sweeps (the committed BENCH files) stay byte-identical. *)
let audit_fields (r : Fleet.Driver.result) =
  if r.Fleet.Driver.config.Fleet.Driver.audit_checkpoint <= 0 then []
  else
    [
      ( "audit",
        Json.Obj
          [
            ( "checkpoint_ms",
              Json.Float
                (Sim.Time.to_ms r.Fleet.Driver.config.Fleet.Driver.audit_checkpoint) );
            ("appends", Json.Int r.Fleet.Driver.audit_appends);
            ("checkpoints", Json.Int r.Fleet.Driver.audit_checkpoints);
            ("proofs", Json.Int r.Fleet.Driver.audit_proofs);
            ("equivocations", Json.Int r.Fleet.Driver.audit_equivocations);
          ] );
    ]

(* [host = false] drops the wall-clock field — the only nondeterministic
   byte in a row — so determinism tests can compare full JSON documents. *)
let row_to_json ?(host = true) { rate; as_count; ttl; domains; host_wall_s; r } =
  Json.Obj
    ([
      ("rate_per_s", Json.Float rate);
      ("as_count", Json.Int as_count);
      ("ttl_ms", Json.Float (Sim.Time.to_ms ttl));
      ("domains", Json.Int domains);
      ("vms_total", Json.Int r.Fleet.Driver.config.Fleet.Driver.vms);
     ]
    @ (if host then [ ("host_wall_s", Json.Float host_wall_s) ] else [])
    @ [
        ("offered", Json.Int r.Fleet.Driver.offered);
        ("served", Json.Int r.Fleet.Driver.served);
        ("offered_rps", Json.Float r.Fleet.Driver.offered_rps);
        ("served_rps", Json.Float r.Fleet.Driver.served_rps);
        ("mean_ms", Json.Float r.Fleet.Driver.mean_ms);
        ("p50_ms", Json.Float r.Fleet.Driver.p50_ms);
        ("p95_ms", Json.Float r.Fleet.Driver.p95_ms);
        ("p99_ms", Json.Float r.Fleet.Driver.p99_ms);
        ("cache_hits", Json.Int r.Fleet.Driver.cache_hits);
        ("cache_hit_rate", Json.Float r.Fleet.Driver.cache_hit_rate);
        ( "shed",
          Json.Obj
            [
              ("customer", Json.Int r.Fleet.Driver.shed_customer);
              ("periodic", Json.Int r.Fleet.Driver.shed_periodic);
              ("recheck", Json.Int r.Fleet.Driver.shed_recheck);
              ( "total",
                Json.Int
                  (r.Fleet.Driver.shed_customer + r.Fleet.Driver.shed_periodic
                 + r.Fleet.Driver.shed_recheck) );
            ] );
        ("coalesced", Json.Int r.Fleet.Driver.coalesced);
        ("measurements", Json.Int r.Fleet.Driver.measurements);
        ("unhealthy", Json.Int r.Fleet.Driver.unhealthy);
        ("invalidations", Json.Int r.Fleet.Driver.invalidations);
        ("migrations", Json.Int r.Fleet.Driver.migrations);
        ("max_queue_depth", Json.Int r.Fleet.Driver.max_queue_depth);
        ("mean_queue_depth", Json.Float r.Fleet.Driver.mean_queue_depth);
        ("epochs", Json.Int r.Fleet.Driver.epochs);
        ( "verify_memo",
          Json.List
            (Array.to_list
               (Array.map
                  (fun (h, m) -> Json.Obj [ ("hits", Json.Int h); ("misses", Json.Int m) ])
                  r.Fleet.Driver.verify_memo)) );
        ("trace_digest", Json.Str r.Fleet.Driver.trace_digest);
      ]
    @ audit_fields r
    @ backend_fields r)

let to_json ?host { seed; scale; rows; sharded } =
  Json.Obj
    [
      ("experiment", Json.Str "fleet");
      ("seed", Json.Int seed);
      ("scale", Json.Str scale);
      ( "model",
        Json.Obj
          [
            ("cold_attest_ms", Json.Float Fleet.Driver.cold_attest_ms);
            ("cache_hit_ms", Json.Float Fleet.Driver.cache_hit_ms);
          ] );
      ("rows", Json.List (List.map (row_to_json ?host) rows));
      ( "sharded",
        Json.Obj
          ([ ("identical_across_domains", Json.Bool sharded.identical) ]
          @
          match sharded.curve with
          | [] -> []
          | base :: _ ->
              [
                ( "vms_total",
                  Json.Int base.r.Fleet.Driver.config.Fleet.Driver.vms );
                ( "as_count",
                  Json.Int base.r.Fleet.Driver.config.Fleet.Driver.as_count );
                ("rate_per_s", Json.Float base.rate);
                ("offered_rps", Json.Float base.r.Fleet.Driver.offered_rps);
                ("trace_digest", Json.Str base.r.Fleet.Driver.trace_digest);
                ( "fingerprint",
                  Json.Str (Fleet.Driver.fingerprint base.r) );
                ( "domains",
                  Json.List
                    (List.map (fun row -> Json.Int row.domains) sharded.curve) );
              ]
              @
              if
                match host with Some false -> false | _ -> true
              then
                [
                  ( "host_wall_s",
                    Json.List
                      (List.map
                         (fun row -> Json.Float row.host_wall_s)
                         sharded.curve) );
                ]
              else []) );
    ]
