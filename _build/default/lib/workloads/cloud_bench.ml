type t = { name : string; run : Sim.Time.t; idle : Sim.Time.t; cpu_bound : bool }

let ms = Sim.Time.ms

(* CPU-bound services demand (nearly) the whole CPU in long bursts, so
   they contend at fair share and almost never earn a wakeup boost;
   IO-bound services sleep on IO most of the time.  The split follows the
   paper's Figure 6: database/web/app are CPU-bound, file/stream/mail are
   IO-bound. *)
let database = { name = "database"; run = ms 200; idle = ms 2; cpu_bound = true }
let web = { name = "web"; run = ms 80; idle = ms 4; cpu_bound = true }
let app = { name = "app"; run = ms 120; idle = ms 3; cpu_bound = true }
let file = { name = "file"; run = ms 2; idle = ms 18; cpu_bound = false }
let stream = { name = "stream"; run = ms 4; idle = ms 16; cpu_bound = false }
let mail = { name = "mail"; run = ms 1; idle = ms 19; cpu_bound = false }

let all = [ database; file; web; app; stream; mail ]

let of_name n = List.find_opt (fun b -> String.equal b.name n) all

let duty b = Sim.Time.to_ms b.run /. (Sim.Time.to_ms b.run +. Sim.Time.to_ms b.idle)

let programs b ~vcpus () =
  List.init vcpus (fun _ -> Hypervisor.Program.duty_cycle ~run:b.run ~idle:b.idle)

let vm ~vid ~owner ?(flavor = Hypervisor.Flavor.large) b =
  Hypervisor.Vm.make ~vid ~owner ~image:Hypervisor.Image.ubuntu ~flavor
    ~programs:(programs b ~vcpus:flavor.Hypervisor.Flavor.vcpus)
    ()
